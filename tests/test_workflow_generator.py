"""Tests for the workload generator (§4.3).

The central guarantee: every generated workflow is structurally valid (it
replays cleanly on a fresh viz graph), deterministic per seed, and
type-faithful (independent workflows never link, 1:N hubs fan out, N:1
selections trigger exactly one query, …).
"""

import numpy as np
import pytest

from repro.common.errors import WorkflowError
from repro.query.model import AggFunc, BinKind
from repro.workflow.generator import (
    WorkflowGenerator,
    WorkloadConfig,
    _nice_floor,
    _nice_width,
    generate_default_suite,
)
from repro.workflow.graph import VizGraph
from repro.workflow.spec import (
    CreateViz,
    Link,
    SelectBins,
    SetFilter,
    Workflow,
    WorkflowType,
)

GENERATED_TYPES = (
    WorkflowType.INDEPENDENT,
    WorkflowType.SEQUENTIAL,
    WorkflowType.ONE_TO_N,
    WorkflowType.N_TO_ONE,
    WorkflowType.MIXED,
)


@pytest.fixture(scope="module")
def generator(flights_profiles):
    return WorkflowGenerator(flights_profiles, "flights", seed=99)


def _replay(workflow: Workflow) -> VizGraph:
    graph = VizGraph()
    for interaction in workflow.interactions:
        graph.apply(interaction)
    return graph


def _queries_per_interaction(workflow: Workflow):
    graph = VizGraph()
    counts = []
    for interaction in workflow.interactions:
        counts.append(len(graph.apply(interaction).affected))
    return counts


class TestStructuralValidity:
    @pytest.mark.parametrize("workflow_type", GENERATED_TYPES)
    def test_replays_cleanly(self, generator, workflow_type):
        for index in range(6):
            workflow = generator.generate(workflow_type, index)
            _replay(workflow)  # raises on structural errors

    @pytest.mark.parametrize("workflow_type", GENERATED_TYPES)
    def test_budget_respected(self, generator, workflow_type):
        config = generator.config
        for index in range(6):
            workflow = generator.generate(workflow_type, index)
            assert (
                config.interactions_min
                <= workflow.num_interactions
                <= config.interactions_max
            )

    @pytest.mark.parametrize("workflow_type", GENERATED_TYPES)
    def test_specs_are_resolved(self, generator, workflow_type):
        workflow = generator.generate(workflow_type, 0)
        for interaction in workflow.interactions:
            if isinstance(interaction, CreateViz):
                assert all(dim.is_resolved for dim in interaction.viz.bins)

    def test_deterministic_per_seed(self, flights_profiles):
        a = WorkflowGenerator(flights_profiles, "flights", seed=1).generate(
            WorkflowType.MIXED, 2
        )
        b = WorkflowGenerator(flights_profiles, "flights", seed=1).generate(
            WorkflowType.MIXED, 2
        )
        assert a == b

    def test_different_index_different_workflow(self, generator):
        a = generator.generate(WorkflowType.MIXED, 0)
        b = generator.generate(WorkflowType.MIXED, 1)
        assert a != b

    def test_custom_type_rejected(self, generator):
        with pytest.raises(WorkflowError):
            generator.generate(WorkflowType.CUSTOM, 0)


class TestTypeCharacteristics:
    def test_independent_has_no_links(self, generator):
        for index in range(6):
            workflow = generator.generate(WorkflowType.INDEPENDENT, index)
            assert not any(isinstance(i, Link) for i in workflow.interactions)

    def test_independent_single_query_per_interaction(self, generator):
        for index in range(6):
            workflow = generator.generate(WorkflowType.INDEPENDENT, index)
            assert all(c <= 1 for c in _queries_per_interaction(workflow))

    def test_sequential_forms_chain(self, generator):
        workflow = generator.generate(WorkflowType.SEQUENTIAL, 0)
        graph = _replay(workflow)
        # Every viz has at most one parent and at most one child.
        for name in graph.viz_names:
            assert len(graph.parents(name)) <= 1
            assert len(graph.children(name)) <= 1

    def test_one_to_n_hub_fans_out(self, generator):
        found_fanout = False
        for index in range(6):
            workflow = generator.generate(WorkflowType.ONE_TO_N, index)
            graph = _replay(workflow)
            fanouts = [len(graph.children(n)) for n in graph.viz_names]
            if fanouts and max(fanouts) >= 2:
                found_fanout = True
        assert found_fanout

    def test_one_to_n_selection_triggers_multiple_queries(self, generator):
        found_multi = False
        for index in range(6):
            workflow = generator.generate(WorkflowType.ONE_TO_N, index)
            if any(c >= 2 for c in _queries_per_interaction(workflow)):
                found_multi = True
        assert found_multi

    def test_n_to_one_selections_trigger_single_query(self, generator):
        for index in range(6):
            workflow = generator.generate(WorkflowType.N_TO_ONE, index)
            graph = VizGraph()
            for interaction in workflow.interactions:
                applied = graph.apply(interaction)
                if isinstance(interaction, SelectBins):
                    assert len(applied.affected) <= 1

    def test_mixed_uses_multiple_patterns(self, generator):
        workflow = generator.generate(WorkflowType.MIXED, 0)
        kinds = {type(i).__name__ for i in workflow.interactions}
        assert "CreateViz" in kinds
        assert len(kinds) >= 3


class TestSampledContent:
    def test_filters_reference_known_columns(self, generator, flights_profiles):
        workflow = generator.generate(WorkflowType.MIXED, 3)
        for interaction in workflow.interactions:
            if isinstance(interaction, SetFilter) and interaction.filter:
                for field in interaction.filter.fields():
                    assert field in flights_profiles

    def test_aggregate_mix_matches_configuration(self, flights_profiles):
        config = WorkloadConfig(
            agg_distribution=(("count", 1.0),), nominal_dim_probability=0.0
        )
        generator = WorkflowGenerator(
            flights_profiles, "flights", config=config, seed=5
        )
        workflow = generator.generate(WorkflowType.INDEPENDENT, 0)
        for interaction in workflow.interactions:
            if isinstance(interaction, CreateViz):
                assert interaction.viz.aggregates[0].func is AggFunc.COUNT

    def test_two_dim_probability_zero_means_1d(self, flights_profiles):
        config = WorkloadConfig(two_dim_probability=0.0)
        generator = WorkflowGenerator(
            flights_profiles, "flights", config=config, seed=5
        )
        for index in range(4):
            workflow = generator.generate(WorkflowType.MIXED, index)
            for interaction in workflow.interactions:
                if isinstance(interaction, CreateViz):
                    assert len(interaction.viz.bins) == 1

    def test_selection_keys_match_binning(self, generator):
        workflow = generator.generate(WorkflowType.ONE_TO_N, 2)
        graph = VizGraph()
        for interaction in workflow.interactions:
            if isinstance(interaction, SelectBins):
                node = graph.node(interaction.viz_name)
                for key in interaction.keys:
                    assert len(key) == len(node.spec.bins)
                    for coord, dim in zip(key, node.spec.bins):
                        if dim.kind is BinKind.NOMINAL:
                            assert isinstance(coord, str)
                        else:
                            assert isinstance(coord, int)
            graph.apply(interaction)


class TestWorkloadConfigValidation:
    def test_rejects_bad_interaction_bounds(self):
        with pytest.raises(WorkflowError):
            WorkloadConfig(interactions_min=1, interactions_max=0)

    def test_rejects_empty_agg_distribution(self):
        with pytest.raises(WorkflowError):
            WorkloadConfig(agg_distribution=())

    def test_rejects_bad_selectivity_range(self):
        with pytest.raises(WorkflowError):
            WorkloadConfig(filter_selectivity_range=(0.0, 0.5))
        with pytest.raises(WorkflowError):
            WorkloadConfig(filter_selectivity_range=(0.6, 0.5))


class TestHelpers:
    @pytest.mark.parametrize("raw,expected", [
        (0.7, 1.0), (1.0, 1.0), (1.4, 2.0), (3.0, 5.0), (7.0, 10.0), (23.0, 50.0),
    ])
    def test_nice_width(self, raw, expected):
        assert _nice_width(raw) == expected

    def test_nice_width_rejects_nonpositive(self):
        with pytest.raises(WorkflowError):
            _nice_width(0.0)

    def test_nice_floor(self):
        assert _nice_floor(17.0, 5.0) == 15.0
        assert _nice_floor(-17.0, 5.0) == -20.0


class TestDefaultSuite:
    def test_fifty_workflows(self, flights_profiles):
        suite = generate_default_suite(flights_profiles, "flights",
                                       workflows_per_type=2)
        assert len(suite) == 10  # 2 per type × 5 types
        names = [w.name for w in suite]
        assert len(set(names)) == len(names)

    def test_generator_requires_quantitative_columns(self):
        from repro.data.schema import ColumnProfile, ColumnKind

        only_nominal = {
            "c": ColumnProfile("c", ColumnKind.NOMINAL, categories=("a", "b"))
        }
        with pytest.raises(WorkflowError):
            WorkflowGenerator(only_nominal, "t")
