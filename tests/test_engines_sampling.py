"""Tests for the offline stratified-sampling engine (System X stand-in)."""

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import EngineError
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.engines.sampling import StratifiedSamplingEngine
from repro.query.groundtruth import evaluate_exact


@pytest.fixture
def engine(flights_dataset, tiny_settings):
    engine = StratifiedSamplingEngine(
        flights_dataset, tiny_settings, VirtualClock(), sampling_rate=0.05
    )
    engine.prepare()
    return engine


def _run_to(engine, t):
    engine.clock.advance_to(t)
    engine.advance_to(t)


def _finished_result(engine, handle, horizon=60.0):
    _run_to(engine, engine.clock.now() + horizon)
    return engine.result_at(handle, engine.clock.now())


class TestSampleConstruction:
    def test_sample_has_roughly_requested_rate(self, engine, flights_dataset):
        total = sum(len(indices) for indices, _ in engine._strata)
        expected = flights_dataset.num_fact_rows * 0.05
        # Minimum per-stratum quotas inflate tiny strata slightly.
        assert expected * 0.8 <= total <= expected * 2.0

    def test_every_stratum_represented(self, engine, flights_dataset):
        # Stratified on the lowest-cardinality nominal column → every
        # category of that column appears in the sample.
        column = engine._stratification_column()
        assert column is not None
        sampled = np.concatenate([indices for indices, _ in engine._strata])
        sampled_categories = set(
            flights_dataset.gather_column(column)[sampled]
        )
        assert sampled_categories == set(flights_dataset.gather_column(column))

    def test_weights_expand_to_population(self, engine, flights_dataset):
        reconstructed = sum(
            len(indices) * weight for indices, weight in engine._strata
        )
        assert reconstructed == pytest.approx(
            flights_dataset.num_fact_rows, rel=0.05
        )

    def test_rejects_bad_rate(self, flights_dataset, tiny_settings):
        with pytest.raises(EngineError):
            StratifiedSamplingEngine(
                flights_dataset, tiny_settings, VirtualClock(), sampling_rate=0.0
            )

    def test_rejects_normalized_dataset(self, flights_table, tiny_settings):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        with pytest.raises(EngineError, match="de-normalized"):
            StratifiedSamplingEngine(star, tiny_settings, VirtualClock())


class TestBlockingOverSample:
    def test_no_intermediate_results(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 0.05)
        assert engine.result_at(handle, 0.05) is None

    def test_queries_finish_fast(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 10.0)
        finished = engine.finished_at(handle)
        assert finished is not None
        assert finished < 3.0  # sample scans are quick

    def test_result_is_approximate_with_margins(self, engine,
                                                carrier_count_query):
        handle = engine.submit(carrier_count_query)
        result = _finished_result(engine, handle)
        assert result is not None
        assert not result.exact
        assert result.fraction < 0.2
        assert any(m[0] is not None for m in result.margins.values())

    def test_stratified_estimates_near_truth(self, engine, carrier_count_query,
                                             flights_dataset):
        handle = engine.submit(carrier_count_query)
        result = _finished_result(engine, handle)
        truth = evaluate_exact(flights_dataset, carrier_count_query)
        # Stratifying on carriers makes carrier counts nearly exact.
        for key, (expected,) in truth.values.items():
            assert result.values[key][0] == pytest.approx(expected, rel=0.15)

    def test_rare_carriers_never_missing(self, engine, carrier_count_query,
                                         flights_dataset):
        handle = engine.submit(carrier_count_query)
        result = _finished_result(engine, handle)
        truth = evaluate_exact(flights_dataset, carrier_count_query)
        assert set(result.values) == set(truth.values)

    def test_quality_constant_wrt_waiting_time(self, engine,
                                               carrier_count_query):
        """System X's defining trait: waiting longer buys nothing."""
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 30.0)
        early = engine.result_at(handle, engine.finished_at(handle) + 0.01)
        late = engine.result_at(handle, 30.0)
        assert early.values == late.values

    def test_repeated_query_same_estimate(self, engine, carrier_count_query):
        """The offline sample is fixed → deterministic estimates."""
        first = engine.submit(carrier_count_query)
        result_one = _finished_result(engine, first)
        second = engine.submit(carrier_count_query)
        result_two = _finished_result(engine, second)
        assert result_one.values == result_two.values

    def test_capabilities(self, engine):
        assert not engine.capabilities.supports_joins
        assert not engine.capabilities.progressive
        assert engine.capabilities.returns_margins
