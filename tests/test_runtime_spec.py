"""Tests for run-spec identity, serialization and planning."""

import pytest

from repro.common.config import BenchmarkSettings, DataSize
from repro.common.errors import ConfigurationError
from repro.common.fingerprint import canonical_json, stable_digest
from repro.runtime.planner import (
    plan_matrix,
    plan_overall,
    plan_schema,
    plan_think_time,
)
from repro.runtime.spec import RunSpec, WorkflowSelector


@pytest.fixture
def settings():
    return BenchmarkSettings(data_size=DataSize.S, scale=50_000, seed=7)


class TestFingerprintHelpers:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_sets_are_order_free(self):
        assert stable_digest(frozenset({"x", "y", "z"})) == stable_digest(
            frozenset({"z", "x", "y"})
        )

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_digest(object())

    def test_digest_is_a_golden_constant(self):
        # Regression guard: the digest must be identical in every process
        # (a salted hash would fail this in ~all interpreter invocations).
        assert stable_digest(["run", 1, 2.5]) == stable_digest(["run", 1, 2.5])
        assert stable_digest("idebench") == "8e62e1e349c27630"


class TestRunSpec:
    def test_round_trip(self, settings):
        spec = RunSpec(
            engine="idea-sim",
            settings=settings.with_(time_requirement=0.5),
            workflows=WorkflowSelector(workflow_type="sequential", count=3),
            speculation=True,
            label="x",
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_fingerprint_stable_and_label_free(self, settings):
        base = RunSpec(engine="idea-sim", settings=settings)
        relabeled = RunSpec(engine="idea-sim", settings=settings, label="other")
        assert base.fingerprint() == relabeled.fingerprint()
        assert base.cell_id == base.fingerprint()[:12]

    def test_fingerprint_separates_cells(self, settings):
        a = RunSpec(engine="idea-sim", settings=settings)
        b = RunSpec(engine="xdb-sim", settings=settings)
        c = RunSpec(
            engine="idea-sim", settings=settings.with_(time_requirement=9.0)
        )
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_cell_seed_depends_on_cell_not_order(self, settings):
        a = RunSpec(engine="idea-sim", settings=settings)
        b = RunSpec(engine="xdb-sim", settings=settings)
        assert a.cell_seed == RunSpec(engine="idea-sim", settings=settings).cell_seed
        assert a.cell_seed != b.cell_seed

    def test_invalid_mode_rejected(self, settings):
        with pytest.raises(ConfigurationError):
            RunSpec(engine="idea-sim", settings=settings, mode="nonsense")

    def test_invalid_selector_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkflowSelector(kind="nonsense")


class TestPlanners:
    def test_plan_overall_order_matches_loops(self, settings):
        specs = plan_overall(
            settings, ("monetdb-sim", "idea-sim"), (0.5, 3.0), 2, DataSize.S
        )
        cells = [(s.engine, s.settings.time_requirement) for s in specs]
        assert cells == [
            ("monetdb-sim", 0.5),
            ("monetdb-sim", 3.0),
            ("idea-sim", 0.5),
            ("idea-sim", 3.0),
        ]

    def test_plan_matrix_cross_product(self, settings):
        specs = plan_matrix(
            settings,
            engines=("monetdb-sim",),
            time_requirements=(0.5, 1.0),
            sizes=(DataSize.S,),
            workflow_types=("mixed", "sequential"),
            per_type=2,
            schemas=("denormalized", "normalized"),
        )
        assert len(specs) == 1 * 1 * 2 * 2 * 2
        assert all(s.workflows.count == 2 for s in specs)
        normalized = [s for s in specs if s.normalized]
        assert len(normalized) == 4
        assert all(s.settings.use_joins for s in normalized)

    def test_plan_matrix_rejects_unknown_schema(self, settings):
        with pytest.raises(ConfigurationError):
            plan_matrix(settings, engines=("monetdb-sim",), schemas=("starry",))

    def test_plan_schema_interleaves_layouts(self, settings):
        specs = plan_schema(
            settings, ("monetdb-sim",), (DataSize.S,), 2, 3.0
        )
        assert [s.normalized for s in specs] == [False, True]

    def test_plan_think_time_sets_speculation_selector(self, settings):
        specs = plan_think_time(settings, (1.0, 2.0), 3.0, DataSize.S, True)
        assert all(s.workflows.kind == "speculation" for s in specs)
        assert [s.settings.think_time for s in specs] == [1.0, 2.0]

    def test_plans_are_reproducible(self, settings):
        first = plan_overall(settings, ("idea-sim",), (0.5,), 2, DataSize.S)
        second = plan_overall(settings, ("idea-sim",), (0.5,), 2, DataSize.S)
        assert [s.fingerprint() for s in first] == [s.fingerprint() for s in second]
