"""Known-bad: unseeded global RNG draws (DET004)."""

import random

import numpy as np
import numpy.random as npr
from random import shuffle


def jitter() -> float:
    return random.random()  # LINT: DET004


def pick(items):
    return random.choice(items)  # LINT: DET004


def noise(n: int):
    return np.random.normal(size=n)  # LINT: DET004


def legacy_rng():
    return npr.rand()  # LINT: DET004


def reorder(items):
    shuffle(items)  # LINT: DET004
    return items


def reseed_global():
    # Seeding the *global* RNG is still a DET004 finding: the global
    # stream is shared, so any other caller perturbs the sequence.
    random.seed(1234)  # LINT: DET004
