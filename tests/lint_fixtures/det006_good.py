"""Known-good: trace attrs carry only virtual-time/derived values;
wall measurements stay out of event attrs entirely (DET006)."""


def record(tracer, vt, rows, digest):
    tracer.event("op.done", vt, rows=rows, digest=digest)
    tracer.event("op.done", vt, session="s-01", progress=0.5)


def record_span(tracer, vt, rows):
    with tracer.span("op", vt) as span:
        span.set("rows", rows)
        span.set("bin_count", 32)


def virtual_duration(tracer, vt_start, vt_end):
    # Durations measured in *virtual* time are deterministic by
    # construction and are fine as regular attrs.
    tracer.event("op.done", vt_end, vt_duration=vt_end - vt_start)
