"""Known-bad: salted builtin hash() outside __hash__ (DET002)."""


def cache_key(query) -> int:
    return hash(query)  # LINT: DET002


def shard_for(name: str, shards: int) -> int:
    return hash(name) % shards  # LINT: DET002


MODULE_LEVEL_KEY = hash(("repro", "lint"))  # LINT: DET002


class Record:
    def digest(self):
        # A method named anything but __hash__ gets no exemption.
        return hash(self.__class__.__name__)  # LINT: DET002
