"""Known-good: set contents are sorted (or canonicalized) before any
stringification reaches a digest or seed (DET005)."""

import hashlib

from repro.common.fingerprint import stable_digest
from repro.common.rng import derive_seed


def digest_tags(tags: set) -> str:
    return hashlib.sha256(repr(sorted(tags)).encode()).hexdigest()


def digest_engines() -> str:
    engines = frozenset(["tr", "margin", "cosine"])
    return stable_digest(sorted(engines))


def rotation_seed(root_seed: int, values: frozenset) -> int:
    canonical = ",".join(sorted(str(v) for v in values))
    return derive_seed(root_seed, f"rotation:{canonical}")


def seed_from_parts(root_seed: int, field: str) -> int:
    return derive_seed(root_seed, "rotation", field)
