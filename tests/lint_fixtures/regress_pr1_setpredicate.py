"""Regression fixture: the PR-1 SetPredicate seed bug, as DET005 bait.

The original bug: ``SetPredicate`` held its values in a ``frozenset``
and relied on the default dataclass ``repr``, which prints set elements
in hash-table order. Engine-rotation seeds were derived from
``str(query)``, so two runs with different PYTHONHASHSEED values drew
different rotation orders and produced different transcripts. The fix
was a canonical ``__repr__`` over ``sorted(self.values)``.

This file reconstructs the *pre-fix* shape with the stringification
inlined at the seed-derivation sink, which is exactly what DET005
exists to catch. Lint with a DET005-only policy.
"""

from repro.common.rng import derive_seed


def rotation_seed_pre_fix(root_seed: int, field: str, raw_values) -> int:
    values = frozenset(raw_values)
    # Pre-fix shape: the frozenset is stringified straight into the
    # seed purpose, so the seed moves with PYTHONHASHSEED.
    return derive_seed(root_seed, f"rotate:{field}:{values}")  # LINT: DET005


def rotation_seed_post_fix(root_seed: int, field: str, raw_values) -> int:
    values = frozenset(raw_values)
    canonical = ",".join(sorted(str(v) for v in values))
    # Post-fix shape: canonicalized before stringification — no finding.
    return derive_seed(root_seed, f"rotate:{field}:{canonical}")
