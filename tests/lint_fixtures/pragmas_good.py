"""Known-good pragma usage: every suppression is well-formed, carries a
reason, and is used — so the file lints clean.

Lint with a DET001-only policy.
"""

import time


def trailing_pragma() -> float:
    return time.time()  # repro: allow[DET001] -- fixture: demonstrates a used trailing pragma


def standalone_pragma() -> float:
    # repro: allow[DET001] -- fixture: demonstrates a standalone pragma covering the next line
    return time.time()


def multi_rule_pragma() -> float:
    # A pragma may list several rule ids; each listed id counts as used
    # if any of them suppresses a finding on the covered line.
    return time.time()  # repro: allow[DET001,DET006] -- fixture: multi-id pragma, DET001 arm is used
