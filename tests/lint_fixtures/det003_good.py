"""Known-good: order-stable consumption of sets and dict views (DET003)."""


def render_rows(cells: dict) -> list:
    rows = []
    for key, value in sorted(cells.items()):
        rows.append(f"{key},{value}")
    return rows


def render_headers(cells: dict) -> str:
    return ",".join(sorted(cells.keys()))


def count_cells(cells: dict) -> int:
    # Order-insensitive reducers never leak iteration order.
    return len(cells.values())


def total(counters: dict) -> int:
    return sum(counters.values())


def bounds(cells: dict) -> tuple:
    return (min(cells.values()), max(cells.values()))


def is_known(name: str) -> bool:
    # Membership tests observe no order.
    return name in {"tr", "margin", "cosine"}


def set_algebra(a: set, b: set) -> set:
    # Building sets from sets stays unordered end to end.
    return (a | b) - (a & b)


def sorted_comprehension(cells: dict) -> list:
    return sorted(f"{k}={v}" for k, v in cells.items())


def rebuild(cells: dict) -> dict:
    return dict(cells.items())
