"""Known-good: hash() only where it belongs (DET002).

``__hash__`` implementations may (must) use builtin ``hash`` — that
value never leaves the process. Everything persisted or cross-process
uses the canonical sha256 digests of ``repro.common.fingerprint``.
"""

from repro.common.fingerprint import stable_digest


class Predicate:
    def __init__(self, field, values):
        self.field = field
        self.values = tuple(values)

    def __eq__(self, other):
        return (self.field, self.values) == (other.field, other.values)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.field, self.values))


def cache_key(query) -> str:
    return stable_digest({"query": query})


def shard_for(name: str, shards: int) -> int:
    return int(stable_digest(name, length=8), 16) % shards
