"""Known-bad: unstable iteration in serialization-tier code (DET003)."""


def render_rows(cells: dict) -> list:
    rows = []
    for key, value in cells.items():  # LINT: DET003
        rows.append(f"{key},{value}")
    return rows


def render_headers(cells: dict) -> str:
    return ",".join(cells.keys())  # LINT: DET003


def dump_values(cells: dict) -> list:
    return list(cells.values())  # LINT: DET003


def serialize_tags(tags: set) -> str:
    parts = [str(tag) for tag in tags]  # LINT: DET003
    return "|".join(parts)


def spread_engines(engines: frozenset) -> tuple:
    return (*engines,)  # LINT: DET003


def walk_literal() -> list:
    out = []
    for name in {"tr", "margin", "cosine"}:  # LINT: DET003
        out.append(name)
    return out


def freeze_pairs(cells: dict) -> dict:
    return {k: v for k, v in cells.items() if v}  # LINT: DET003


def first_tag(tags):
    return next(iter(set(tags)))  # LINT: DET003
