"""Known-bad pragma usage: every problem here surfaces as a DET000
meta-finding (unsuppressible).

Lint with a DET001-only policy.
"""

import time


def missing_reason() -> float:
    # A pragma without a ``-- reason`` suppresses nothing and is itself
    # a finding, so the wall read below still fires too.
    # repro: allow[DET001]  # LINT: DET000
    return time.time()  # LINT: DET001


def bad_rule_id() -> float:
    # repro: allow[det1] -- lowercase id is not a rule id  # LINT: DET000
    return time.time()  # LINT: DET001


def malformed_attempt() -> float:
    # repro: allowDET001 -- missing brackets  # LINT: DET000
    return time.time()  # LINT: DET001


# An unused pragma (nothing on this or the next line triggers DET001)
# is reported so suppressions cannot silently outlive their finding.
# repro: allow[DET001] -- stale suppression, nothing fires here  # LINT: DET000
def clean() -> int:
    return 7
