"""Known-bad: set/frozenset stringification flowing into digests or
seed derivation (DET005).

``repr()`` of a set prints elements in hash-table order, which moves
with PYTHONHASHSEED — feeding it to hashlib or a seed-derivation helper
makes the digest (and everything keyed off it) nondeterministic.
"""

import hashlib

from repro.common.rng import derive_rng, derive_seed


def digest_tags(tags: set) -> str:
    return hashlib.sha256(repr(tags).encode()).hexdigest()  # LINT: DET005


def digest_engines() -> str:
    engines = frozenset(["tr", "margin", "cosine"])
    h = hashlib.md5()
    h.update(str(engines).encode())  # LINT: DET005
    return h.hexdigest()


def rotation_seed(root_seed: int, values: frozenset) -> int:
    return derive_seed(root_seed, f"rotation:{values}")  # LINT: DET005


def rotation_rng(root_seed: int, values: set):
    return derive_rng(root_seed, values)  # LINT: DET005


def seed_from_literal(root_seed: int) -> int:
    return derive_seed(root_seed, {"a", "b", "c"})  # LINT: DET005
