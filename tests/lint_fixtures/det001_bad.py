"""Known-bad: direct wall-clock reads (DET001)."""

import time
from datetime import date, datetime
from time import perf_counter


def stamp_started(record):
    record["started"] = time.time()  # LINT: DET001
    record["mono"] = time.monotonic()  # LINT: DET001
    record["mono_ns"] = time.monotonic_ns()  # LINT: DET001
    return record


def elapsed(previous):
    return perf_counter() - previous  # LINT: DET001


def report_header():
    today = date.today()  # LINT: DET001
    now = datetime.now()  # LINT: DET001
    utc = datetime.utcnow()  # LINT: DET001
    return f"{today} {now} {utc}"
