"""Known-good: every RNG draw goes through a derived, purpose-keyed
generator (DET004)."""

from repro.common.rng import derive_rng


def jitter(root_seed: int) -> float:
    rng = derive_rng(root_seed, "lint-fixture", "jitter")
    return rng.random()


def pick(root_seed: int, items):
    rng = derive_rng(root_seed, "lint-fixture", "pick")
    return items[rng.integers(0, len(items))]


def noise(root_seed: int, n: int):
    rng = derive_rng(root_seed, "lint-fixture", "noise")
    return rng.normal(size=n)


def reorder(root_seed: int, items):
    rng = derive_rng(root_seed, "lint-fixture", "reorder")
    out = list(items)
    rng.shuffle(out)
    return out
