"""Known-bad: wall-time-ish attributes leaking into trace events
outside the reserved ``"wall"`` key (DET006).

Trace attrs are golden-pinned; any wall-clock-derived value in them
breaks byte-reproducibility. Wall timings belong under the segregated
``"wall"`` key written by the tracer itself.
"""


def record(tracer, vt, elapsed, started):
    tracer.event("op.done", vt, elapsed_s=elapsed)  # LINT: DET006
    tracer.event("op.done", vt, wall_start=started)  # LINT: DET006
    tracer.event("op.done", vt, timestamp=started)  # LINT: DET006


def record_span(tracer, vt, t0, t1):
    with tracer.span("op", vt) as span:
        span.set("perf_seconds", t1 - t0)  # LINT: DET006
        span.set("clock_skew", t1 - t0)  # LINT: DET006


def record_kw_span(tracer, vt, dt):
    tracer.span("op", vt, monotonic_delta=dt)  # LINT: DET006
