"""Known-good: wall time routed through the clock authority (DET001).

``perf_seconds`` is swappable in tests and the only sanctioned wall
source; simulation time comes from a ``Clock``. Mentioning the banned
names in strings or docs ("time.time is forbidden") is not a read.
"""

from repro.common.clock import VirtualClock, perf_seconds

BANNED_DOC = "never call time.time() or datetime.now() directly"


def stamp_started(record):
    record["started"] = perf_seconds()
    return record


def elapsed(previous):
    return perf_seconds() - previous


def virtual_now(clock: VirtualClock) -> float:
    return clock.now()


def strftime_like(moment: float) -> str:
    # Arithmetic on an already-sanctioned stamp is fine.
    return f"{moment:.6f}"
