"""Cross-module integration tests.

These exercise the complete pipeline — seed → copula scale → workflow
generation → engine execution → metrics → reports — and assert the
relationships that individual unit tests cannot see (e.g. progressive
estimates converge to the blocking engine's exact answers; summary rows
are consistent with their underlying records; the whole run is
reproducible end to end).
"""

import math

import numpy as np
import pytest

from repro import (
    BenchmarkDriver,
    BenchmarkSettings,
    DataSize,
    DetailedReport,
    SummaryReport,
)
from repro.bench.experiments import ExperimentContext, MAIN_ENGINES, make_engine
from repro.bench.report import summarize_records
from repro.common.clock import VirtualClock, WallClock
from repro.engines import ENGINE_REGISTRY
from repro.workflow.spec import WorkflowType


@pytest.fixture(scope="module")
def small_ctx():
    return ExperimentContext(
        BenchmarkSettings(
            data_size=DataSize.S, scale=10_000, workflows_per_type=2, seed=23
        )
    )


class TestEngineAgreement:
    """All engines must answer the same queries consistently."""

    def test_progressive_converges_to_blocking_answer(self, small_ctx):
        settings = small_ctx.settings.with_(time_requirement=300.0,
                                            think_time=400.0)
        workflows = small_ctx.workflows(WorkflowType.INDEPENDENT, 1)
        exact = small_ctx.run("monetdb-sim", workflows, settings=settings)
        approx = small_ctx.run("idea-sim", workflows, settings=settings)
        assert len(exact) == len(approx)
        for exact_record, approx_record in zip(exact, approx):
            assert not exact_record.tr_violated
            assert not approx_record.tr_violated
            # With a huge TR the progressive engine finishes its scan:
            # identical missing bins (none) and near-zero error.
            assert approx_record.metrics.missing_bins == 0.0
            assert approx_record.metrics.rel_error_avg == pytest.approx(0.0, abs=1e-9)

    def test_all_main_engines_run_the_same_suite(self, small_ctx):
        workflows = small_ctx.workflows(WorkflowType.MIXED, 1)
        counts = set()
        for engine in MAIN_ENGINES:
            records = small_ctx.run(engine, workflows)
            counts.add(len(records))
            assert all(r.driver == engine for r in records)
        assert len(counts) == 1  # same workload → same query count


class TestReportConsistency:
    def test_summary_consistent_with_detail(self, small_ctx):
        workflows = small_ctx.workflows(WorkflowType.MIXED, 2)
        records = small_ctx.run("system-x-sim", workflows)
        total = summarize_records(records)[-1]
        manual_violations = 100.0 * sum(
            r.tr_violated for r in records
        ) / len(records)
        assert total.pct_tr_violated == pytest.approx(manual_violations)
        manual_missing = float(np.mean(
            [r.metrics.missing_bins for r in records]
        ))
        assert total.mean_missing_bins == pytest.approx(manual_missing)

    def test_detailed_report_row_count(self, small_ctx, tmp_path):
        workflows = small_ctx.workflows(WorkflowType.MIXED, 1)
        records = small_ctx.run("idea-sim", workflows)
        report = DetailedReport(records)
        path = tmp_path / "out.csv"
        report.to_csv(path)
        assert len(path.read_text().splitlines()) == len(records) + 1

    def test_summary_renders_for_every_engine(self, small_ctx):
        workflows = small_ctx.workflows(WorkflowType.MIXED, 1)
        for engine in MAIN_ENGINES:
            records = small_ctx.run(engine, workflows)
            text = SummaryReport(records).render()
            assert "all" in text


class TestReproducibility:
    def test_full_run_bit_identical(self):
        def run_once():
            ctx = ExperimentContext(
                BenchmarkSettings(
                    data_size=DataSize.S, scale=10_000,
                    workflows_per_type=1, seed=5,
                )
            )
            workflows = ctx.workflows(WorkflowType.MIXED, 1)
            records = ctx.run("idea-sim", workflows)
            return [
                (r.query_id, r.start_time, r.end_time,
                 r.metrics.bins_delivered, r.rows_processed)
                for r in records
            ]

        assert run_once() == run_once()

    def test_seed_changes_everything(self):
        def signature(seed):
            ctx = ExperimentContext(
                BenchmarkSettings(
                    data_size=DataSize.S, scale=10_000,
                    workflows_per_type=1, seed=seed,
                )
            )
            workflows = ctx.workflows(WorkflowType.MIXED, 1)
            records = ctx.run("idea-sim", workflows)
            return tuple(r.metrics.bins_delivered for r in records)

        assert signature(1) != signature(2)


class TestRegistry:
    def test_registry_names_construct(self, small_ctx):
        dataset = small_ctx.dataset(DataSize.S)
        for name in ENGINE_REGISTRY:
            engine = make_engine(
                name, dataset, small_ctx.settings, VirtualClock()
            )
            assert engine.name == name

    def test_top_level_api_surface(self):
        import repro

        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol
        assert repro.__version__


class TestWallClockSmoke:
    """The same code paths run under real time (tiny configuration)."""

    def test_blocking_engine_under_wall_clock(self, small_ctx,
                                              carrier_count_query):
        from repro.engines.columnstore import ColumnStoreEngine

        # Huge scale → ~10k actual rows, demand far below the TR.
        settings = BenchmarkSettings(
            data_size=DataSize.S, scale=10_000, seed=23,
            time_requirement=5.0,
        )
        dataset = small_ctx.dataset(DataSize.S)
        clock = WallClock()
        engine = ColumnStoreEngine(dataset, settings, clock)
        engine.prepare()
        handle = engine.submit(carrier_count_query)
        deadline = clock.now() + 2.0
        clock.advance(engine.cost_model.startup_latency + 1.0)
        engine.advance_to(clock.now())
        result = engine.result_at(handle, min(clock.now(), deadline))
        assert result is not None and result.exact

    def test_adapter_under_wall_clock(self, small_ctx):
        from repro.bench.adapters import SystemAdapter
        from repro.engines.progressive import ProgressiveEngine
        from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
        from repro.workflow.spec import VizSpec

        settings = BenchmarkSettings(
            data_size=DataSize.S, scale=10_000, seed=23, time_requirement=0.8,
        )
        engine = ProgressiveEngine(
            small_ctx.dataset(DataSize.S), settings, WallClock()
        )
        engine.prepare()
        adapter = SystemAdapter(engine)
        adapter.workflow_start()
        viz = VizSpec(
            "v", "flights",
            bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        response = adapter.process_request(viz)
        # Real time elapsed ≈ the TR; a (possibly partial) answer exists.
        assert response.finished_at - response.started_at <= 1.2
        assert response.result is not None
