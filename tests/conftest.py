"""Shared fixtures for the test suite.

Fixture sizing: test datasets are a few thousand rows — big enough for
statistical assertions (sampling estimators, copula marginals) yet small
enough that the full suite runs in well under a minute. Session scope is
used for anything immutable (tables, datasets, profiles); engines and
clocks are function-scoped because they are stateful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.common.config import BenchmarkSettings, DataSize
from repro.data.schema import profile_table
from repro.data.seed import generate_flights_seed
from repro.data.storage import Dataset
from repro.query.groundtruth import GroundTruthOracle
from repro.query.model import (
    AggFunc,
    Aggregate,
    AggQuery,
    BinDimension,
    BinKind,
)


@pytest.fixture(scope="session")
def flights_table():
    """A 6 000-row synthetic flights table (shared, treat as immutable)."""
    return generate_flights_seed(6_000, seed=11)


@pytest.fixture(scope="session")
def flights_dataset(flights_table):
    return Dataset.from_table(flights_table)


@pytest.fixture(scope="session")
def flights_profiles(flights_table):
    return profile_table(flights_table)


@pytest.fixture(scope="session")
def flights_oracle(flights_dataset):
    return GroundTruthOracle(flights_dataset)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture(scope="session")
def tiny_settings():
    """Settings mapping the paper's S size onto ~6 000 actual rows.

    ``scale`` is chosen so engines process row counts comparable to the
    session fixtures' tables; individual tests override fields via
    ``tiny_settings.with_(...)`` (the dataclass is frozen, so sharing is
    safe).
    """
    return BenchmarkSettings(
        data_size=DataSize.S,
        scale=100_000_000 // 6_000,
        seed=11,
        workflows_per_type=2,
    )


@pytest.fixture(scope="session")
def carrier_count_query():
    """1-D nominal COUNT histogram over carriers."""
    return AggQuery(
        table="flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )


@pytest.fixture(scope="session")
def delay_avg_query():
    """1-D quantitative AVG histogram over departure delays."""
    return AggQuery(
        table="flights",
        bins=(BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=20.0),),
        aggregates=(Aggregate(AggFunc.AVG, "ARR_DELAY"),),
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="session")
def server_ctx():
    """Shared ExperimentContext for every session-server test module.

    One seed-table + copula-fit + scaled-table + oracle construction per
    test session instead of one per module: the server, churn, policy,
    and golden-report suites all run the same (S, scale=50 000, seed=5,
    TR=1 s) configuration, and contexts only hand out immutable shared
    state (engines are built per test). ~2 000 actual rows — large
    enough for non-trivial metrics, fast enough for tier 1.
    """
    from repro.bench.experiments import ExperimentContext

    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=50_000,
        seed=5,
        time_requirement=1.0,
    )
    return ExperimentContext(settings)
