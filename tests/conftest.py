"""Shared fixtures for the test suite.

Fixture sizing: test datasets are a few thousand rows — big enough for
statistical assertions (sampling estimators, copula marginals) yet small
enough that the full suite runs in well under a minute. Session scope is
used for anything immutable (tables, datasets, profiles); engines and
clocks are function-scoped because they are stateful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.common.config import BenchmarkSettings, DataSize
from repro.data.schema import profile_table
from repro.data.seed import generate_flights_seed
from repro.data.storage import Dataset
from repro.query.groundtruth import GroundTruthOracle
from repro.query.model import (
    AggFunc,
    Aggregate,
    AggQuery,
    BinDimension,
    BinKind,
)


@pytest.fixture(scope="session")
def flights_table():
    """A 6 000-row synthetic flights table (shared, treat as immutable)."""
    return generate_flights_seed(6_000, seed=11)


@pytest.fixture(scope="session")
def flights_dataset(flights_table):
    return Dataset.from_table(flights_table)


@pytest.fixture(scope="session")
def flights_profiles(flights_table):
    return profile_table(flights_table)


@pytest.fixture(scope="session")
def flights_oracle(flights_dataset):
    return GroundTruthOracle(flights_dataset)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture(scope="session")
def tiny_settings():
    """Settings mapping the paper's S size onto ~6 000 actual rows.

    ``scale`` is chosen so engines process row counts comparable to the
    session fixtures' tables; individual tests override fields via
    ``tiny_settings.with_(...)`` (the dataclass is frozen, so sharing is
    safe).
    """
    return BenchmarkSettings(
        data_size=DataSize.S,
        scale=100_000_000 // 6_000,
        seed=11,
        workflows_per_type=2,
    )


@pytest.fixture(scope="session")
def carrier_count_query():
    """1-D nominal COUNT histogram over carriers."""
    return AggQuery(
        table="flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )


@pytest.fixture(scope="session")
def delay_avg_query():
    """1-D quantitative AVG histogram over departure delays."""
    return AggQuery(
        table="flights",
        bins=(BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=20.0),),
        aggregates=(Aggregate(AggFunc.AVG, "ARR_DELAY"),),
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(7)
