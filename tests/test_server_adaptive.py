"""Tests for adaptive serving and open-system churn (docs/server.md).

The acceptance properties of the adaptive layer:

* **replay anchor** — serving with ``policy="replay"`` routes every
  interaction through the policy machinery yet produces bytes identical
  to scripted serving;
* **adaptive determinism** — markov/uncertainty runs are a pure function
  of their configuration (byte-identical across invocations and pacing);
* **behavioral difference** — adaptive policies fire measurably
  different interaction mixes than replay;
* **open-system churn** — Poisson arrivals spawn sessions mid-run,
  departures abandon cleanly (no ghost engine load), and churned runs
  stay byte-deterministic.
"""

import pytest

from repro.common.errors import BenchmarkError
from repro.server import (
    ArrivalProcess,
    OpenSystemManager,
    SessionManager,
    run_adaptive_bench,
)
from repro.workflow.policy import interaction_mix, mix_distance


def _csvs(results):
    return [result.csv_text() for result in results]


class TestAdaptiveClosedSystem:
    def test_replay_policy_matches_scripted_serving(self, server_ctx):
        scripted = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1
        ).run()
        replayed = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, policy="replay"
        ).run()
        assert _csvs(scripted) == _csvs(replayed)

    @pytest.mark.parametrize("policy", ["markov", "uncertainty"])
    def test_adaptive_serving_is_deterministic(self, server_ctx, policy):
        def serve():
            return SessionManager.for_engine(
                server_ctx, "idea-sim", 2, per_session=1, policy=policy
            ).run()

        first, second = serve(), serve()
        assert _csvs(first) == _csvs(second)
        assert sum(result.num_queries for result in first) > 0

    def test_adaptive_pacing_is_byte_identical(self, server_ctx):
        paced = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, policy="markov",
            accel=1_000_000.0,
        ).run()
        unpaced = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, policy="markov"
        ).run()
        assert _csvs(paced) == _csvs(unpaced)

    def test_adaptive_mixes_differ_from_replay(self, server_ctx):
        def mix_for(policy):
            results = SessionManager.for_engine(
                server_ctx, "idea-sim", 2, per_session=1, policy=policy
            ).run()
            counts = {}
            for result in results:
                for kind, count in result.interaction_counts.items():
                    counts[kind] = counts.get(kind, 0) + count
            return interaction_mix(counts)

        replay = mix_for("replay")
        assert mix_distance(replay, mix_for("markov")) > 0.05
        assert mix_distance(replay, mix_for("uncertainty")) > 0.05

    def test_adaptive_sessions_differ_from_each_other(self, server_ctx):
        results = SessionManager.for_engine(
            server_ctx, "idea-sim", 3, per_session=1, policy="markov"
        ).run()
        texts = _csvs(results)
        assert len(set(texts)) == len(texts)  # per-session seeds diverge

    def test_shared_engine_adaptive_deterministic(self, server_ctx):
        def serve():
            return SessionManager.for_engine(
                server_ctx, "monetdb-sim", 3, per_session=1,
                policy="uncertainty", share_engine=True,
            ).run()

        assert _csvs(serve()) == _csvs(serve())

    def test_policy_count_must_match_specs(self, server_ctx):
        from repro.server import session_specs

        specs = session_specs(server_ctx, 2, per_session=1)
        oracle = server_ctx.oracle(server_ctx.settings.data_size)
        with pytest.raises(BenchmarkError):
            SessionManager(
                specs, oracle, server_ctx.settings,
                engines=[object(), object()], policies=[None],
            )


class TestArrivalProcess:
    def test_schedule_is_deterministic(self):
        def schedule():
            return ArrivalProcess(
                0.2, 50.0, seed=5, mean_residence=20.0, max_sessions=8
            ).schedule()

        assert schedule() == schedule()

    def test_schedule_respects_horizon_and_cap(self):
        arrivals = ArrivalProcess(5.0, 10.0, seed=5, max_sessions=6).schedule()
        assert len(arrivals) == 6
        assert all(a.arrival_time < 10.0 for a in arrivals)
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)
        assert [a.index for a in arrivals] == list(range(6))

    def test_departures_follow_arrivals(self):
        arrivals = ArrivalProcess(
            1.0, 20.0, seed=5, mean_residence=5.0
        ).schedule()
        assert arrivals
        assert all(a.departure_time > a.arrival_time for a in arrivals)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            ArrivalProcess(0.0, 10.0)
        with pytest.raises(BenchmarkError):
            ArrivalProcess(1.0, 0.0)
        with pytest.raises(BenchmarkError):
            ArrivalProcess(1.0, 10.0, mean_residence=0.0)
        with pytest.raises(BenchmarkError):
            ArrivalProcess(1.0, 10.0, max_sessions=0)


class TestOpenSystem:
    ARRIVALS = dict(rate=0.2, horizon=40.0)

    def _arrivals(self, server_ctx, residence=25.0):
        return ArrivalProcess(
            self.ARRIVALS["rate"],
            self.ARRIVALS["horizon"],
            seed=server_ctx.settings.seed,
            mean_residence=residence,
            max_sessions=4,
        )

    def _run(self, server_ctx, **kwargs):
        manager = OpenSystemManager.for_engine(
            server_ctx,
            kwargs.pop("engine", "idea-sim"),
            kwargs.pop("arrivals", self._arrivals(server_ctx)),
            **kwargs,
        )
        return manager, manager.run()

    @pytest.mark.parametrize("policy", [None, "replay", "markov"])
    def test_churned_runs_are_byte_deterministic(self, server_ctx, policy):
        _, first = self._run(server_ctx, policy=policy)
        _, second = self._run(server_ctx, policy=policy)
        assert _csvs(first) == _csvs(second)
        assert len(first) == 4

    def test_accel_does_not_change_bytes(self, server_ctx):
        _, paced = self._run(server_ctx, policy="markov", accel=1_000_000.0)
        _, unpaced = self._run(server_ctx, policy="markov")
        assert _csvs(paced) == _csvs(unpaced)

    def test_sessions_actually_depart(self, server_ctx):
        _, results = self._run(server_ctx, policy="markov")
        departed = [r for r in results if r.departed_at is not None]
        stayed = [r for r in results if r.departed_at is None]
        assert departed, "residence of 25s must churn some session out"
        assert stayed, "some session must run to completion"
        for result in departed:
            assert all(
                record.end_time <= result.departed_at
                for record in result.records
            )

    def test_sessions_arrive_mid_run(self, server_ctx):
        manager, results = self._run(
            server_ctx, policy="markov", trace_capture=True
        )
        arrival_marks = [t for t, sid in manager.trace if sid == "arrival"]
        step_marks = [t for t, sid in manager.trace if sid != "arrival"]
        assert len(arrival_marks) == len(results)
        # At least one session arrived after another had started stepping.
        assert any(t > min(step_marks) for t in arrival_marks)
        times = [t for t, _ in manager.trace]
        assert times == sorted(times)

    def test_shared_engine_departure_leaves_no_ghost_load(self, server_ctx):
        manager, results = self._run(
            server_ctx, policy="uncertainty", share_engine=True
        )
        engine = manager._shared_engine
        departed_ids = {
            r.session_id for r in results if r.departed_at is not None
        }
        assert departed_ids
        scheduler = engine.scheduler
        for task_id in scheduler.active_tasks():
            assert scheduler.task_group(task_id) not in departed_ids

    def test_shared_engine_churn_deterministic(self, server_ctx):
        _, first = self._run(
            server_ctx, policy="markov", share_engine=True,
            arrivals=self._arrivals(server_ctx),
        )
        _, second = self._run(
            server_ctx, policy="markov", share_engine=True,
            arrivals=self._arrivals(server_ctx),
        )
        assert _csvs(first) == _csvs(second)

    def test_single_shot(self, server_ctx):
        manager, _ = self._run(server_ctx, policy="markov")
        with pytest.raises(BenchmarkError):
            manager.run()

    def test_arriving_session_matches_closed_session_workload(self, server_ctx):
        """Arrival i and closed-system session i share seed and suite."""
        manager, results = self._run(
            server_ctx, policy=None, arrivals=ArrivalProcess(
                0.2, 40.0, seed=server_ctx.settings.seed, max_sessions=2
            )
        )
        from repro.server import session_specs

        closed = session_specs(server_ctx, 2, per_session=2)
        for result, spec in zip(results, closed):
            assert result.spec.seed == spec.seed
            assert [w.to_dict() for w in result.spec.workflows] == [
                w.to_dict() for w in spec.workflows
            ]


class TestAdaptiveBench:
    def test_cells_cache_byte_identically(self, server_ctx, tmp_path):
        from repro.runtime import ArtifactStore
        from repro.server import adaptive_bench_csv_text

        store = ArtifactStore(tmp_path / "cache")
        kwargs = dict(
            per_session=1,
            churn_modes=("closed", "open"),
            arrival_rate=0.2,
            horizon=40.0,
            residence=25.0,
        )
        first = run_adaptive_bench(
            server_ctx, "idea-sim", ["replay", "markov"], [2],
            store=store, **kwargs,
        )
        second = run_adaptive_bench(
            server_ctx, "idea-sim", ["replay", "markov"], [2],
            store=store, **kwargs,
        )
        assert all(cell.from_cache for cell in second)
        assert adaptive_bench_csv_text(first) == adaptive_bench_csv_text(second)

    def test_unknown_churn_mode_rejected(self, server_ctx):
        with pytest.raises(ValueError):
            run_adaptive_bench(
                server_ctx, "idea-sim", ["replay"], [1],
                churn_modes=("sideways",),
            )

    def test_bad_arrival_params_rejected_before_any_cell(self, server_ctx):
        with pytest.raises(BenchmarkError):
            run_adaptive_bench(
                server_ctx, "idea-sim", ["replay"], [1],
                churn_modes=("open",), arrival_rate=0.0,
            )

    def test_closed_cells_ignore_arrival_params_in_keys(self, server_ctx):
        from repro.server.report import adaptive_cell_key
        from repro.workflow.spec import WorkflowType

        def key(churn, rate, horizon, residence):
            return adaptive_cell_key(
                server_ctx.settings, "idea-sim", "replay", 2, churn, 1,
                WorkflowType.MIXED, rate, horizon, residence, False,
            )

        # Closed cells never consult the arrival process: tuning it must
        # not invalidate their cached results.
        assert key("closed", 0.1, 60.0, 30.0) == key("closed", 0.5, 99.0, None)
        assert key("open", 0.1, 60.0, 30.0) != key("open", 0.5, 99.0, None)
