"""Tests for the scheduler's policy hook and per-session fair sharing.

The session server's shared-engine mode (docs/server.md) relies on
:class:`FairSessionPolicy`: capacity splits equally across session
groups first, by task weight within a group second — so one session's
burst of concurrent queries cannot starve another session.
"""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import EngineError
from repro.engines.scheduler import (
    FairSessionPolicy,
    ProcessorSharingScheduler,
    WeightedSharingPolicy,
)


def _advance(clock, scheduler, t):
    clock.advance_to(t)
    scheduler.advance_to(t)


class TestFairSessionPolicy:
    def test_groups_split_capacity_equally(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        lone = scheduler.add_task(10.0, group="s0")
        burst = [scheduler.add_task(10.0, group="s1") for _ in range(3)]
        _advance(clock, scheduler, 2.0)
        # Group s0 gets 1/2 capacity for its single task; the three s1
        # tasks share the other 1/2 (1/6 each).
        assert scheduler.work_done(lone) == pytest.approx(1.0)
        for task in burst:
            assert scheduler.work_done(task) == pytest.approx(2.0 / 6.0)

    def test_weights_apply_within_group(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        heavy = scheduler.add_task(10.0, weight=3.0, group="s0")
        light = scheduler.add_task(10.0, weight=1.0, group="s0")
        other = scheduler.add_task(10.0, group="s1")
        _advance(clock, scheduler, 4.0)
        assert scheduler.work_done(other) == pytest.approx(2.0)
        assert scheduler.work_done(heavy) == pytest.approx(1.5)
        assert scheduler.work_done(light) == pytest.approx(0.5)

    def test_finished_group_releases_its_share(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        short = scheduler.add_task(1.0, group="s0")
        long = scheduler.add_task(10.0, group="s1")
        _advance(clock, scheduler, 4.0)
        # s0 finishes its 1s of work after 2s (at 1/2 share); from then on
        # s1 runs exclusively: 2s * 1/2 + 2s * 1 = 3s of service.
        assert scheduler.finished_at(short) == pytest.approx(2.0)
        assert scheduler.work_done(long) == pytest.approx(3.0)

    def test_background_only_group_yields_capacity(self):
        # A session whose only active tasks are near-zero-weight
        # background work (paused speculation) must not claim a full
        # per-session share: its claim is min(1, sum of weights).
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        background = scheduler.add_task(100.0, weight=1e-4, group="idle")
        foreground = scheduler.add_task(10.0, weight=1.0, group="busy")
        _advance(clock, scheduler, 1.0)
        assert scheduler.work_done(foreground) == pytest.approx(
            1.0 / (1.0 + 1e-4)
        )
        assert scheduler.work_done(background) == pytest.approx(
            1e-4 / (1.0 + 1e-4)
        )

    def test_claims_cap_keeps_sessions_equal(self):
        # Ten foreground queries in one session claim no more than one
        # query in another: both groups cap at claim 1.
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        lone = scheduler.add_task(10.0, weight=1.0, group="s0")
        burst = [
            scheduler.add_task(10.0, weight=1.0, group="s1") for _ in range(10)
        ]
        _advance(clock, scheduler, 2.0)
        assert scheduler.work_done(lone) == pytest.approx(1.0)
        for task in burst:
            assert scheduler.work_done(task) == pytest.approx(0.1)

    def test_ungrouped_tasks_form_one_group(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        a = scheduler.add_task(10.0)
        b = scheduler.add_task(10.0)
        grouped = scheduler.add_task(10.0, group="s0")
        _advance(clock, scheduler, 2.0)
        assert scheduler.work_done(grouped) == pytest.approx(1.0)
        assert scheduler.work_done(a) == pytest.approx(0.5)
        assert scheduler.work_done(b) == pytest.approx(0.5)


class TestPolicyAndGroupHooks:
    def test_default_policy_ignores_groups(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock)
        assert isinstance(scheduler.policy, WeightedSharingPolicy)
        lone = scheduler.add_task(10.0, group="s0")
        burst = [scheduler.add_task(10.0, group="s1") for _ in range(3)]
        _advance(clock, scheduler, 2.0)
        # Plain weighted sharing: four equal tasks, 1/4 capacity each.
        assert scheduler.work_done(lone) == pytest.approx(0.5)
        for task in burst:
            assert scheduler.work_done(task) == pytest.approx(0.5)

    def test_set_group_tags_subsequent_tasks(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock)
        scheduler.set_group("s7")
        tagged = scheduler.add_task(1.0)
        explicit = scheduler.add_task(1.0, group="s8")
        scheduler.set_group(None)
        untagged = scheduler.add_task(1.0)
        assert scheduler.task_group(tagged) == "s7"
        assert scheduler.task_group(explicit) == "s8"
        assert scheduler.task_group(untagged) is None

    def test_set_policy_refused_once_tasks_exist(self):
        scheduler = ProcessorSharingScheduler(VirtualClock())
        scheduler.add_task(1.0)
        with pytest.raises(EngineError):
            scheduler.set_policy(FairSessionPolicy())

    def test_set_policy_before_tasks(self):
        scheduler = ProcessorSharingScheduler(VirtualClock())
        policy = FairSessionPolicy()
        scheduler.set_policy(policy)
        assert scheduler.policy is policy


class TestCancelGroup:
    """Group lifecycle on churn: a departing session's tasks all stop."""

    def test_cancels_only_the_group(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock)
        scheduler.set_policy(FairSessionPolicy())
        mine = [scheduler.add_task(10.0, group="s0") for _ in range(2)]
        other = scheduler.add_task(10.0, group="s1")
        _advance(clock, scheduler, 1.0)
        assert scheduler.cancel_group("s0") == 2
        for task in mine:
            assert scheduler.is_cancelled(task)
        assert not scheduler.is_cancelled(other)
        assert scheduler.active_tasks() == [other]
        # The survivor now gets full capacity.
        _advance(clock, scheduler, 2.0)
        assert scheduler.work_done(other) == pytest.approx(0.5 + 1.0)

    def test_finished_tasks_are_left_alone(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock)
        done = scheduler.add_task(1.0, group="s0")
        _advance(clock, scheduler, 2.0)
        assert scheduler.finished_at(done) == pytest.approx(1.0)
        assert scheduler.cancel_group("s0") == 0
        assert not scheduler.is_cancelled(done)
        assert scheduler.finished_at(done) == pytest.approx(1.0)

    def test_none_group_cancels_untagged_tasks(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock)
        untagged = scheduler.add_task(5.0)
        tagged = scheduler.add_task(5.0, group="s0")
        assert scheduler.cancel_group(None) == 1
        assert scheduler.is_cancelled(untagged)
        assert not scheduler.is_cancelled(tagged)


class TestGroupLifecycle:
    """Group hygiene across remote disconnect/reconnect (PR 5)."""

    def test_active_groups_lists_groups_with_live_tasks(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        scheduler.add_task(10.0, group="s1")
        scheduler.add_task(10.0, group="s0")
        scheduler.add_task(10.0)  # ungrouped pool
        assert scheduler.active_groups() == ["s0", "s1", None]

    def test_cancel_group_removes_it_from_active_groups(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        scheduler.add_task(10.0, group="s0")
        scheduler.add_task(10.0, group="s1")
        assert scheduler.cancel_group("s0") == 1
        assert scheduler.active_groups() == ["s1"]

    def test_cancel_group_resets_a_dead_default_group(self):
        # A session that disconnects while holding the turn leaves the
        # scheduler's default group pointing at it; cancel_group must
        # reset the default so no later task lands in the dead group.
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        scheduler.set_group("ghost")
        scheduler.add_task(10.0)
        scheduler.cancel_group("ghost")
        orphan = scheduler.add_task(10.0)
        assert scheduler.task_group(orphan) is None

    def test_cancel_group_keeps_an_unrelated_default_group(self):
        clock = VirtualClock()
        scheduler = ProcessorSharingScheduler(clock, policy=FairSessionPolicy())
        scheduler.set_group("alive")
        scheduler.add_task(10.0, group="ghost")
        scheduler.cancel_group("ghost")
        survivor = scheduler.add_task(10.0)
        assert scheduler.task_group(survivor) == "alive"
