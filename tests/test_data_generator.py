"""Tests for the Gaussian-copula data scaler (§4.2).

The scaler's contract: output of any size whose marginal distributions and
pairwise rank correlations match the seed sample. These are statistical
assertions, so tolerances are generous but the sample sizes make failures
indicate real regressions, not noise.
"""

import numpy as np
import pytest

from repro.common.errors import DataGenerationError
from repro.data.generator import CopulaScaler, scale_dataset
from repro.data.seed import generate_flights_seed
from repro.data.stats import spearman_correlation
from repro.data.storage import Table


@pytest.fixture(scope="module")
def scaler(flights_table):
    return CopulaScaler.fit(flights_table, seed_value=11)


@pytest.fixture(scope="module")
def scaled(scaler):
    return scaler.generate(12_000)


class TestFit:
    def test_fit_captures_all_columns(self, scaler, flights_table):
        assert scaler.column_names == flights_table.column_names
        total = len(scaler.numeric_cdfs) + len(scaler.nominal_cdfs)
        assert total == len(flights_table.column_names)

    def test_correlation_matrix_is_valid(self, scaler):
        sigma = scaler.correlation
        assert np.allclose(np.diag(sigma), 1.0)
        assert np.allclose(sigma, sigma.T)
        eigenvalues = np.linalg.eigvalsh(sigma)
        assert eigenvalues.min() > -1e-8

    def test_rejects_tiny_seed(self):
        with pytest.raises(DataGenerationError):
            CopulaScaler.fit(Table("t", {"a": [1]}))


class TestGenerate:
    def test_row_count_and_schema(self, scaled, flights_table):
        assert scaled.num_rows == 12_000
        assert scaled.column_names == flights_table.column_names

    def test_dtypes_preserved(self, scaled, flights_table):
        for name in flights_table.column_names:
            assert scaled[name].dtype.kind == flights_table[name].dtype.kind, name

    def test_batching_invisible(self, scaler):
        one_batch = scaler.generate(1_000, batch_rows=2_000, stream="x")
        many_batches = scaler.generate(1_000, batch_rows=100, stream="x")
        assert one_batch.equals(many_batches)

    def test_streams_are_independent(self, scaler):
        a = scaler.generate(500, stream="a")
        b = scaler.generate(500, stream="b")
        assert not a.equals(b)

    def test_deterministic(self, scaler):
        a = scaler.generate(500, stream=1)
        b = scaler.generate(500, stream=1)
        assert a.equals(b)

    def test_rejects_zero_rows(self, scaler):
        with pytest.raises(DataGenerationError):
            scaler.generate(0)


class TestStatisticalFidelity:
    """The §4.2 promise: distributions and relationships are maintained."""

    def test_numeric_marginals_preserved(self, scaled, flights_table):
        for column in ("DEP_DELAY", "DISTANCE", "DEP_TIME"):
            seed_q = np.percentile(flights_table[column], [10, 25, 50, 75, 90])
            out_q = np.percentile(scaled[column], [10, 25, 50, 75, 90])
            span = flights_table[column].max() - flights_table[column].min()
            assert np.all(np.abs(seed_q - out_q) < 0.05 * span), column

    def test_nominal_marginals_preserved(self, scaled, flights_table):
        seed_values, seed_counts = np.unique(
            flights_table["UNIQUE_CARRIER"], return_counts=True
        )
        seed_freq = dict(zip(seed_values, seed_counts / flights_table.num_rows))
        out_values, out_counts = np.unique(
            scaled["UNIQUE_CARRIER"], return_counts=True
        )
        out_freq = dict(zip(out_values, out_counts / scaled.num_rows))
        for category, frequency in seed_freq.items():
            if frequency > 0.02:
                assert out_freq.get(category, 0.0) == pytest.approx(
                    frequency, abs=0.02
                ), category

    def test_rank_correlations_preserved(self, scaled, flights_table):
        pairs = [("DEP_DELAY", "ARR_DELAY"), ("DISTANCE", "AIR_TIME")]
        for a, b in pairs:
            seed_rho = spearman_correlation(flights_table[a], flights_table[b])
            out_rho = spearman_correlation(scaled[a], scaled[b])
            assert out_rho == pytest.approx(seed_rho, abs=0.1), (a, b)

    def test_uncorrelated_stays_uncorrelated(self, scaled):
        rho = spearman_correlation(scaled["MONTH"], scaled["DISTANCE"])
        assert abs(rho) < 0.1

    def test_nominal_numeric_association_preserved(self, scaled, flights_table):
        # Carrier rank correlates with delay in the seed (carrier quality
        # effect); the copula must keep that monotone association.
        def carrier_delay_gap(table):
            carriers = table["UNIQUE_CARRIER"]
            values, counts = np.unique(carriers, return_counts=True)
            common = values[np.argmax(counts)]
            rare = values[np.argmin(counts)]
            common_delay = table["DEP_DELAY"][carriers == common].mean()
            rare_delay = table["DEP_DELAY"][carriers == rare].mean()
            return rare_delay - common_delay

        assert carrier_delay_gap(flights_table) > 0
        assert carrier_delay_gap(scaled) > 0


class TestScaleDatasetHelper:
    def test_one_shot_equivalent_to_fit_generate(self, flights_table):
        direct = scale_dataset(flights_table, 400, seed_value=5, stream="s")
        scaler = CopulaScaler.fit(flights_table, seed_value=5)
        indirect = scaler.generate(400, stream="s")
        assert direct.equals(indirect)
