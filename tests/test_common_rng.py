"""Tests for deterministic seed derivation."""

import numpy as np
from hypothesis import given, strategies as st

from repro.common.rng import (
    derive_rng,
    derive_seed,
    derive_session_seed,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_root_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_differs_by_purpose(self):
        assert derive_seed(42, "copula") != derive_seed(42, "workflow")

    def test_differs_by_purpose_arity(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")

    def test_fits_in_64_bits(self):
        seed = derive_seed(42, "anything", 123, "deep")
        assert 0 <= seed < 2**64

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=20))
    def test_always_valid_seed(self, root, purpose):
        seed = derive_seed(root, purpose)
        assert 0 <= seed < 2**64
        # numpy accepts it
        np.random.default_rng(seed)

    def test_purpose_separator_prevents_collisions(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestDeriveRng:
    def test_same_purpose_same_stream(self):
        a = derive_rng(42, "stream").random(10)
        b = derive_rng(42, "stream").random(10)
        assert np.array_equal(a, b)

    def test_different_purpose_different_stream(self):
        a = derive_rng(42, "one").random(10)
        b = derive_rng(42, "two").random(10)
        assert not np.array_equal(a, b)

    def test_streams_are_statistically_independent_ish(self):
        a = derive_rng(42, "s", 1).random(2_000)
        b = derive_rng(42, "s", 2).random(2_000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1


class TestDeriveSessionSeed:
    def test_pure_function_of_root_and_index(self):
        assert derive_session_seed(42, 3) == derive_session_seed(42, 3)
        assert derive_session_seed(42, 3) != derive_session_seed(42, 4)
        assert derive_session_seed(42, 3) != derive_session_seed(43, 3)

    def test_matches_purpose_string_derivation(self):
        # The documented contract: ("server-session", index).
        assert derive_session_seed(7, 0) == derive_seed(7, "server-session", 0)

    def test_distinct_from_other_purposes(self):
        assert derive_session_seed(7, 0) != derive_seed(7, "workflow", 0)
