"""Shared-engine serving over TCP: turn protocol, equivalence, adversaries.

The tentpole contract: a shared-engine run served over loopback TCP —
scripted clients *and* client-driven wire replays — produces per-session
reports **byte-identical** to the in-process ``repro serve
--share-engine`` run of the same configuration, because the TCP server
drives the exact same shared-engine :class:`SessionManager`, merely
pacing each step turn through TURN_GRANT/TURN_DONE frames.

The adversarial half: a client that answers a grant out of order, never
answers it (wall-clock turn timeout), or disconnects while holding the
turn abandons exactly its own session — scheduler group swept — and the
*remaining* sessions' reports are byte-identical to an in-process run
where that session abandoned at the same point.
"""

import threading

import pytest

from repro.common.errors import ProtocolError
from repro.net.client import (
    NetClient,
    fetch_scripted_session,
    records_csv_text,
    replay_workflow,
)
from repro.net.protocol import (
    CAP_SHARED_ENGINE,
    Barrier,
    TurnDone,
    TurnGrant,
)
from repro.net.server import ServerThread, TcpSessionServer
from repro.server import SessionAbandoned, SessionManager, SessionTurnHook


@pytest.fixture(scope="module")
def shared_reference(server_ctx):
    """In-process serve --share-engine: 2 sessions × 1 mixed workflow."""
    return SessionManager.for_engine(
        server_ctx, "idea-sim", 2, per_session=1, share_engine=True
    ).run()


class _AbandonAfterSteps(SessionTurnHook):
    """In-process stand-in for a remote client dying mid-run."""

    def __init__(self, kill_after: int):
        self.kill_after = kill_after
        self.steps = 0

    async def on_step(self, event_time, records):
        self.steps += 1
        if self.steps >= self.kill_after:
            raise SessionAbandoned("test abandonment")


@pytest.fixture(scope="module")
def abandoned_reference(server_ctx):
    """In-process shared run where session 0 abandons after its 1st step.

    Every TCP adversarial scenario below kills session 0 at exactly that
    point (the first grant is session 0's, time-0 ties break by index),
    so the survivor's bytes must match this run's session 1.
    """
    manager = SessionManager.for_engine(
        server_ctx, "idea-sim", 2, per_session=1, share_engine=True,
        turn_hooks={0: _AbandonAfterSteps(1)},
    )
    results = manager.run()
    assert manager.abandoned == ["session-0"]
    return results


def _shared_server(ctx, **kwargs):
    kwargs.setdefault("max_sessions", 2)
    kwargs.setdefault("per_session", 1)
    return TcpSessionServer(ctx, "idea-sim", share_engine=True, **kwargs)


def _fetch_in_thread(host, port, index, out, errors):
    def run():
        try:
            _, records, _ = fetch_scripted_session(
                host, port, index, per_session=1
            )
            out[index] = records_csv_text(records)
        except Exception as error:  # noqa: BLE001 - surfaced by the test
            errors.append((index, error))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestSharedEquivalence:
    def test_scripted_sessions_byte_identical(
        self, server_ctx, shared_reference
    ):
        out, errors = {}, []
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            threads = [
                _fetch_in_thread(host, port, index, out, errors)
                for index in range(2)
            ]
            for thread in threads:
                thread.join(120)
        assert not errors
        for index, expected in enumerate(shared_reference):
            assert out[index] == expected.csv_text()

    def test_wire_replay_byte_identical(self, server_ctx, shared_reference):
        # Session 0 client-driven: its scripted workflow crosses the
        # wire interaction by interaction; both sessions must still
        # reproduce the all-scripted in-process bytes.
        workflow = shared_reference[0].spec.workflows[0]
        out, errors = {}, []
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            def replay():
                try:
                    _, records, _ = replay_workflow(
                        host, port, workflow, session_index=0
                    )
                    out[0] = records_csv_text(records)
                except Exception as error:  # noqa: BLE001
                    errors.append((0, error))

            replay_thread = threading.Thread(target=replay, daemon=True)
            replay_thread.start()
            scripted_thread = _fetch_in_thread(host, port, 1, out, errors)
            replay_thread.join(120)
            scripted_thread.join(120)
        assert not errors
        assert out[0] == shared_reference[0].csv_text()
        assert out[1] == shared_reference[1].csv_text()

    def test_hello_announces_shared_capability(self, server_ctx):
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                hello = client.hello()
                # Leave without attaching; the run never starts.
        assert CAP_SHARED_ENGINE in hello.capabilities

    def test_repeated_runs_are_byte_identical(self, server_ctx):
        outputs = []
        for _ in range(2):
            out, errors = {}, []
            with ServerThread(_shared_server(server_ctx)) as (host, port):
                threads = [
                    _fetch_in_thread(host, port, index, out, errors)
                    for index in range(2)
                ]
                for thread in threads:
                    thread.join(120)
            assert not errors
            outputs.append((out[0], out[1]))
        assert outputs[0] == outputs[1]


class TestAttachValidation:
    def _handshake(self, client):
        client.hello()

    def test_out_of_range_slot_rejected(self, server_ctx):
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                with pytest.raises(ProtocolError, match="out of range"):
                    client.attach_scripted(7, per_session=1)

    def test_duplicate_slot_rejected(self, server_ctx):
        with ServerThread(
            _shared_server(server_ctx, max_sessions=3)
        ) as (host, port):
            with NetClient(host, port) as first:
                first.hello()
                first.attach_scripted(0, per_session=1)
                with NetClient(host, port) as second:
                    second.hello()
                    with pytest.raises(ProtocolError, match="already"):
                        second.attach_scripted(0, per_session=1)

    def test_mismatched_workload_rejected(self, server_ctx):
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                with pytest.raises(ProtocolError, match="mismatched"):
                    client.attach_scripted(0, per_session=3)

    def test_accel_rejected(self, server_ctx):
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                with pytest.raises(ProtocolError, match="accel"):
                    client.attach_scripted(0, per_session=1, accel=10.0)

    def test_reserved_client_name_rejected(self, server_ctx):
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                with pytest.raises(ProtocolError, match="reserved"):
                    client.attach_client(name="session-1", session_index=0)


class TestAdversaries:
    """Misbehaving clients abandon only themselves; survivors unchanged."""

    def _survivor_matches(self, out, errors, abandoned_reference):
        assert not errors
        assert out[1] == abandoned_reference[1].csv_text()

    def test_out_of_order_turn_done(self, server_ctx, abandoned_reference):
        out, errors = {}, []
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            survivor = _fetch_in_thread(host, port, 1, out, errors)
            with NetClient(host, port, auto_ack=False) as client:
                client.hello()
                client.attach_scripted(0, per_session=1)
                # Barrier, then the first grant (time-0 tie → slot 0).
                message = client.read_message()
                assert isinstance(message, Barrier)
                grant = client.read_message()
                assert isinstance(grant, TurnGrant)
                assert grant.turn == 0
                client.send(TurnDone(turn=99))
                with pytest.raises(ProtocolError, match="out-of-order"):
                    while True:
                        client.read_message()
            survivor.join(120)
        self._survivor_matches(out, errors, abandoned_reference)

    def test_client_never_answers_grant(self, server_ctx,
                                        abandoned_reference):
        # Virtual time stalls (nobody advances while the grant is
        # outstanding) until the wall-clock turn timeout abandons the
        # silent session; the survivor then runs to completion.
        out, errors = {}, []
        server = _shared_server(server_ctx, turn_timeout=0.4)
        with ServerThread(server) as (host, port):
            survivor = _fetch_in_thread(host, port, 1, out, errors)
            with NetClient(host, port, auto_ack=False) as client:
                client.hello()
                client.attach_scripted(0, per_session=1)
                with pytest.raises(ProtocolError, match="turn timeout"):
                    while True:  # Barrier, grant 0, then the error
                        client.read_message()
            survivor.join(120)
        self._survivor_matches(out, errors, abandoned_reference)

    def test_disconnect_while_holding_the_turn(self, server_ctx,
                                               abandoned_reference):
        out, errors = {}, []
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            survivor = _fetch_in_thread(host, port, 1, out, errors)
            client = NetClient(host, port, auto_ack=False).connect()
            client.hello()
            client.attach_scripted(0, per_session=1)
            message = client.read_message()
            assert isinstance(message, Barrier)
            grant = client.read_message()
            assert isinstance(grant, TurnGrant)
            client.close()  # vanish while holding the turn
            survivor.join(120)
        self._survivor_matches(out, errors, abandoned_reference)

    def test_incomplete_population_aborts_with_typed_error(self, server_ctx):
        # One participant attaches then nobody else joins: an attached-
        # but-dead peer is undetectable pre-barrier (its socket may hold
        # pipelined frames), so the barrier must time out with a typed
        # error instead of wedging every connected client forever.
        server = _shared_server(server_ctx, barrier_timeout=0.3)
        with ServerThread(server) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                client.attach_scripted(0, per_session=1)
                with pytest.raises(ProtocolError, match="barrier timeout"):
                    client.read_message()

    def test_client_driven_detach_without_interactions(self, server_ctx):
        # A shared-run participant that joins client-driven and
        # immediately detaches is a clean zero-query session; the
        # scripted neighbor must be unaffected (it matches the run where
        # session 0's slot produced nothing — i.e. the abandoned run).
        out, errors = {}, []
        with ServerThread(_shared_server(server_ctx)) as (host, port):
            survivor = _fetch_in_thread(host, port, 1, out, errors)
            with NetClient(host, port) as client:
                client.hello()
                client.attach_client(name="walker", session_index=0)
                client.detach()
                records, summary = client.collect()
            survivor.join(120)
        assert not errors
        assert records == []
        assert summary.queries == 0


class TestManagerTurnHooks:
    """The in-process half of the contract, without sockets."""

    def test_noop_hooks_change_no_bytes(self, server_ctx,
                                        shared_reference):
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, share_engine=True,
            turn_hooks={0: SessionTurnHook(), 1: SessionTurnHook()},
        )
        results = manager.run()
        for result, expected in zip(results, shared_reference):
            assert result.csv_text() == expected.csv_text()
        assert manager.abandoned == []

    def test_session_driver_steps_counts_processed_events(
        self, server_ctx, shared_reference
    ):
        from repro.bench.driver import SessionDriver
        from repro.bench.experiments import make_engine
        from repro.common.clock import VirtualClock

        settings = server_ctx.settings
        dataset = server_ctx.dataset(settings.data_size, False)
        oracle = server_ctx.oracle(settings.data_size, False)
        engine = make_engine("idea-sim", dataset, settings,
                             VirtualClock(), False)
        engine.prepare()
        workflow = shared_reference[0].spec.workflows[0]
        driver = SessionDriver(engine, oracle, settings, [workflow])
        records = driver.run()
        # One step per processed event: every deadline evaluation plus
        # every interaction fire.
        assert driver.steps == len(records) + len(workflow.interactions)

    def test_abandonment_sweeps_the_scheduler_group(self, server_ctx):
        from repro.bench.experiments import make_engine
        from repro.common.clock import VirtualClock

        settings = server_ctx.settings
        dataset = server_ctx.dataset(settings.data_size, False)
        engine = make_engine("idea-sim", dataset, settings,
                             VirtualClock(), False)
        manager = SessionManager.for_engine.__func__  # appease linters
        del manager
        run = SessionManager(
            specs=SessionManager.for_engine(
                server_ctx, "idea-sim", 2, per_session=1,
                share_engine=True,
            ).specs,
            oracle=server_ctx.oracle(settings.data_size, False),
            settings=settings,
            engine=engine,
            turn_hooks={0: _AbandonAfterSteps(2)},
        )
        run.run()
        assert run.abandoned == ["session-0"]
        assert "session-0" not in engine.scheduler.active_groups()
