"""Tests for the blocking column-store engine (MonetDB stand-in)."""

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import EngineError
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.engines.columnstore import ColumnStoreEngine
from repro.query.groundtruth import evaluate_exact


@pytest.fixture
def engine(flights_dataset, tiny_settings, clock):
    engine = ColumnStoreEngine(flights_dataset, tiny_settings, clock)
    engine.prepare()
    return engine


def _run_to(engine, t):
    engine.clock.advance_to(t)
    engine.advance_to(t)


class TestLifecycle:
    def test_submit_before_prepare_rejected(self, flights_dataset, tiny_settings,
                                            clock, carrier_count_query):
        engine = ColumnStoreEngine(flights_dataset, tiny_settings, clock)
        with pytest.raises(EngineError):
            engine.submit(carrier_count_query)

    def test_double_prepare_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.prepare()

    def test_prepare_reports_load_time(self, flights_dataset, tiny_settings, clock):
        engine = ColumnStoreEngine(flights_dataset, tiny_settings, clock)
        report = engine.prepare()
        assert report.engine == "monetdb-sim"
        assert report.seconds > 0
        assert report.virtual_rows == tiny_settings.virtual_rows
        assert dict(report.components)

    def test_unknown_handle_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.result_at(123, 0.0)


class TestBlockingSemantics:
    def test_no_result_before_completion(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        finish = None
        for t in np.arange(0.1, 30.0, 0.1):
            _run_to(engine, float(t))
            if engine.finished_at(handle) is not None:
                finish = engine.finished_at(handle)
                break
        assert finish is not None
        assert engine.result_at(handle, finish - 0.05) is None
        assert engine.result_at(handle, finish + 0.001) is not None

    def test_result_is_exact(self, engine, carrier_count_query, flights_dataset):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 60.0)
        result = engine.result_at(handle, 60.0)
        expected = evaluate_exact(flights_dataset, carrier_count_query)
        assert result.exact
        assert result.values == expected.values
        assert result.margins == {}

    def test_result_cached_after_first_poll(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 60.0)
        first = engine.result_at(handle, 60.0)
        second = engine.result_at(handle, 60.0)
        assert first is second

    def test_cancel_prevents_result(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 0.2)
        engine.cancel(handle)
        _run_to(engine, 60.0)
        assert engine.finished_at(handle) is None
        assert engine.result_at(handle, 60.0) is None

    def test_selective_queries_finish_faster(self, engine, carrier_count_query,
                                             delay_avg_query, flights_dataset,
                                             tiny_settings):
        from repro.query.filters import RangePredicate
        from repro.query.model import AggQuery

        broad = carrier_count_query
        narrow = AggQuery(
            table=broad.table,
            bins=broad.bins,
            aggregates=broad.aggregates,
            filter=RangePredicate("DEP_DELAY", 200, 500),  # rare delays
        )
        h_broad = engine.submit(broad)
        _run_to(engine, 100.0)
        t_broad = engine.finished_at(h_broad)
        h_narrow = engine.submit(narrow)
        _run_to(engine, 200.0)
        t_narrow = engine.finished_at(h_narrow) - 100.0
        assert t_narrow < t_broad

    def test_concurrent_queries_slow_each_other(self, flights_dataset,
                                                tiny_settings, clock,
                                                carrier_count_query):
        solo_engine = ColumnStoreEngine(flights_dataset, tiny_settings, VirtualClock())
        solo_engine.prepare()
        solo = solo_engine.submit(carrier_count_query)
        solo_engine.clock.advance_to(100.0)
        solo_engine.advance_to(100.0)
        solo_time = solo_engine.finished_at(solo)

        shared_engine = ColumnStoreEngine(flights_dataset, tiny_settings, VirtualClock())
        shared_engine.prepare()
        first = shared_engine.submit(carrier_count_query)
        second = shared_engine.submit(carrier_count_query)
        shared_engine.clock.advance_to(100.0)
        shared_engine.advance_to(100.0)
        assert shared_engine.finished_at(first) > solo_time * 1.5
        assert shared_engine.finished_at(second) > solo_time * 1.5

    def test_completion_time_caps_at_deadline(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 100.0)
        finished = engine.finished_at(handle)
        assert engine.completion_time(handle, deadline=finished + 5) == finished
        assert engine.completion_time(handle, deadline=finished - 0.1) == (
            finished - 0.1
        )


class TestJoinsSupport:
    def test_runs_on_star_schema(self, flights_table, tiny_settings,
                                 carrier_count_query):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        engine = ColumnStoreEngine(star, tiny_settings, VirtualClock())
        engine.prepare()
        handle = engine.submit(carrier_count_query)
        engine.clock.advance_to(100.0)
        engine.advance_to(100.0)
        result = engine.result_at(handle, 100.0)
        flat_expected = evaluate_exact(
            __import__("repro.data.storage", fromlist=["Dataset"]).Dataset.from_table(
                flights_table
            ),
            carrier_count_query,
        )
        assert result.values == flat_expected.values

    def test_capabilities(self, engine):
        assert engine.capabilities.supports_joins
        assert not engine.capabilities.progressive
