"""Calendar scheduler ↔ legacy task-per-session equivalence (ISSUE 8).

The event-calendar scheduler replaces one asyncio task per session with
a single loop over a heap of ``(event_time, index)`` entries. Its
contract is *byte equivalence*: for every serving configuration the
legacy path supports, the calendar must produce identical per-session
CSVs, identical traces, and identical side-effect ordering — the legacy
path stays available behind ``REPRO_SCHEDULER=tasks`` precisely so this
suite can keep proving that.

Also here: the targeted-wakeup regression for the legacy timeline (one
wakeup per grant, never a thundering herd) and the trace ring's
bounded/opt-in behavior.
"""

import pytest

from repro.common.errors import BenchmarkError
from repro.server import (
    ArrivalProcess,
    OpenSystemManager,
    SessionManager,
    resolve_scheduler,
)
from repro.server.manager import SCHEDULER_ENV


def _csvs(results):
    return [result.csv_text() for result in results]


def _closed(server_ctx, scheduler, **kwargs):
    manager = SessionManager.for_engine(
        server_ctx, kwargs.pop("engine", "idea-sim"),
        kwargs.pop("sessions", 3), scheduler=scheduler, **kwargs
    )
    return manager, manager.run()


def _open(server_ctx, scheduler, **kwargs):
    arrivals = kwargs.pop("arrivals", None) or ArrivalProcess(
        0.2, 40.0, seed=server_ctx.settings.seed,
        mean_residence=25.0, max_sessions=4,
    )
    manager = OpenSystemManager.for_engine(
        server_ctx, kwargs.pop("engine", "idea-sim"), arrivals,
        scheduler=scheduler, **kwargs
    )
    return manager, manager.run()


class TestResolveScheduler:
    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert resolve_scheduler() == "calendar"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "tasks")
        assert resolve_scheduler() == "tasks"

    def test_explicit_choice_beats_env(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "tasks")
        assert resolve_scheduler("calendar") == "calendar"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        with pytest.raises(BenchmarkError):
            resolve_scheduler("fibers")
        monkeypatch.setenv(SCHEDULER_ENV, "fibers")
        with pytest.raises(BenchmarkError):
            resolve_scheduler()


class TestClosedSystemEquivalence:
    @pytest.mark.parametrize("share_engine", [False, True])
    def test_scripted_bytes_identical(self, server_ctx, share_engine):
        _, calendar = _closed(
            server_ctx, "calendar", per_session=2, share_engine=share_engine
        )
        _, tasks = _closed(
            server_ctx, "tasks", per_session=2, share_engine=share_engine
        )
        assert _csvs(calendar) == _csvs(tasks)

    @pytest.mark.parametrize("policy", ["markov", "uncertainty"])
    def test_adaptive_bytes_identical(self, server_ctx, policy):
        _, calendar = _closed(
            server_ctx, "calendar", per_session=1, policy=policy,
            share_engine=True, engine="monetdb-sim",
        )
        _, tasks = _closed(
            server_ctx, "tasks", per_session=1, policy=policy,
            share_engine=True, engine="monetdb-sim",
        )
        assert _csvs(calendar) == _csvs(tasks)

    def test_traces_identical(self, server_ctx):
        cal_mgr, _ = _closed(
            server_ctx, "calendar", per_session=1, trace_capture=True
        )
        task_mgr, _ = _closed(
            server_ctx, "tasks", per_session=1, trace_capture=True
        )
        assert cal_mgr.trace == task_mgr.trace
        assert cal_mgr.trace  # non-vacuous

    @pytest.mark.parametrize("sessions", [1, 10, 100])
    def test_bytes_identical_across_orders_of_magnitude(
        self, server_ctx, sessions
    ):
        """1 → 10² sessions: equivalence must not be a small-N accident."""
        _, calendar = _closed(
            server_ctx, "calendar", sessions=sessions, per_session=1
        )
        _, tasks = _closed(
            server_ctx, "tasks", sessions=sessions, per_session=1
        )
        assert _csvs(calendar) == _csvs(tasks)


class TestOpenSystemEquivalence:
    @pytest.mark.parametrize("share_engine", [False, True])
    def test_churn_bytes_and_traces_identical(self, server_ctx, share_engine):
        cal_mgr, calendar = _open(
            server_ctx, "calendar", policy="markov",
            share_engine=share_engine, trace_capture=True,
        )
        task_mgr, tasks = _open(
            server_ctx, "tasks", policy="markov",
            share_engine=share_engine, trace_capture=True,
        )
        assert _csvs(calendar) == _csvs(tasks)
        assert [r.departed_at for r in calendar] == [
            r.departed_at for r in tasks
        ]
        assert cal_mgr.trace == task_mgr.trace

    @pytest.mark.parametrize("seed_offset", [0, 1, 2, 3])
    def test_seeded_churn_fuzz(self, server_ctx, seed_offset):
        """Randomized arrival processes: both schedulers, same bytes."""
        import random

        rng = random.Random(1000 + seed_offset)
        rate = rng.uniform(0.1, 0.6)
        residence = rng.uniform(8.0, 30.0)
        cap = rng.randint(2, 6)

        def arrivals():
            return ArrivalProcess(
                rate, 35.0, seed=server_ctx.settings.seed + seed_offset,
                mean_residence=residence, max_sessions=cap,
            )

        policy = rng.choice(["replay", "markov", "uncertainty"])
        share = rng.random() < 0.5
        _, calendar = _open(
            server_ctx, "calendar", arrivals=arrivals(), policy=policy,
            share_engine=share,
        )
        _, tasks = _open(
            server_ctx, "tasks", arrivals=arrivals(), policy=policy,
            share_engine=share,
        )
        assert _csvs(calendar) == _csvs(tasks)


class TestTargetedWakeups:
    def test_one_wakeup_per_grant_closed(self, server_ctx):
        """The legacy timeline wakes exactly the winning session per step.

        ``wakeups`` counts ``Event.set()`` calls; the trace counts turn
        grants. Equality means no thundering herd: every step wakes one
        coroutine, so per-step cost is O(1) wakeups, not O(sessions).
        """
        manager, _ = _closed(
            server_ctx, "tasks", sessions=4, per_session=1,
            trace_capture=True,
        )
        assert manager._timeline.wakeups == len(manager.trace)
        assert len(manager.trace) > 4

    def test_one_wakeup_per_grant_open(self, server_ctx):
        manager, _ = _open(
            server_ctx, "tasks", policy="markov", trace_capture=True
        )
        # The spawner holds a timeline slot too: each arrival grant is
        # one wakeup, so total wakeups == step grants + arrival grants.
        assert manager._timeline.wakeups == len(manager.trace)


class TestTraceRing:
    def test_trace_off_by_default(self, server_ctx):
        manager, _ = _closed(server_ctx, "calendar", per_session=1)
        assert manager.trace == []

    def test_trace_ring_is_bounded(self, server_ctx):
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 3, per_session=1, trace_capture=8
        )
        manager.run()
        trace = manager.trace
        assert len(trace) == 8
        assert manager._trace_ring.dropped > 0
        times = [t for t, _ in trace]
        assert times == sorted(times)  # the *latest* marks survive

    def test_trace_capture_true_keeps_everything(self, server_ctx):
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 3, per_session=1, trace_capture=True
        )
        manager.run()
        assert manager._trace_ring.dropped == 0
        assert len(manager.trace) > 0
