"""Tier-1 mirror of the CI docs job (tools/check_docs.py).

Keeps the documentation guarantees local: a broken intra-repo markdown
link or a package missing from docs/architecture.md fails the test
suite before it fails CI.
"""

import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).parent.parent / "tools"
sys.path.insert(0, str(TOOLS_DIR))

import check_docs  # noqa: E402


@pytest.fixture(scope="module")
def root():
    return check_docs.repo_root()


class TestDocsPresence:
    @pytest.mark.parametrize(
        "page", ["architecture.md", "paper-mapping.md", "server.md"]
    )
    def test_docs_suite_exists(self, root, page):
        assert (root / "docs" / page).is_file()

    def test_readme_links_docs_suite(self, root):
        text = (root / "README.md").read_text(encoding="utf-8")
        for page in ("architecture.md", "paper-mapping.md", "server.md"):
            assert f"docs/{page}" in text


class TestLinkCheck:
    def test_all_relative_links_resolve(self, root):
        assert check_docs.check_links(root) == []

    def test_extract_links_handles_anchors_and_titles(self):
        links = check_docs.extract_links(
            '[a](docs/server.md) [b](docs/x.md#top) [c](https://e.org) '
            '[d](#local) ![img](fig.png "cap")'
        )
        assert links == [
            "docs/server.md", "docs/x.md#top", "https://e.org", "#local",
            "fig.png",
        ]

    def test_broken_link_detected(self, tmp_path):
        (tmp_path / "a.md").write_text("[x](missing.md)", encoding="utf-8")
        problems = check_docs.check_links(tmp_path)
        assert len(problems) == 1
        assert "missing.md" in problems[0]


class TestArchitectureCoverage:
    def test_every_package_is_documented(self, root):
        assert check_docs.check_architecture_coverage(root) == []

    def test_server_package_is_required(self, root):
        # Guards the check itself: it must actually enumerate packages.
        architecture = (root / "docs" / "architecture.md").read_text(
            encoding="utf-8"
        )
        assert "src/repro/server/" in architecture
        assert "src/repro/runtime/" in architecture


class TestRequiredSections:
    def test_all_required_sections_present(self, root):
        assert check_docs.check_required_sections(root) == []

    def test_missing_marker_detected(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "server.md").write_text("stub", encoding="utf-8")
        problems = check_docs.check_required_sections(tmp_path)
        assert any("Adaptive sessions" in problem for problem in problems)
        assert any("README.md is missing" in problem for problem in problems)


class TestModuleAnchors:
    def test_every_module_states_a_paper_anchor(self, root):
        """Each public module's docstring names its paper-section anchor
        (a '§' reference, like bench/driver.py's §4.4) in its opening
        lines — the convention docs/architecture.md documents."""
        missing = []
        for path in sorted((root / "src" / "repro").rglob("*.py")):
            head = "\n".join(
                path.read_text(encoding="utf-8").splitlines()[:20]
            )
            if "§" not in head:
                missing.append(str(path.relative_to(root)))
        assert missing == []
