"""Tests for detailed and summary report generation (§4.8)."""

import csv
import io
import math

import pytest

from repro.bench.driver import QueryRecord
from repro.bench.metrics import QueryMetrics
from repro.bench.report import (
    DETAILED_COLUMNS,
    DetailedReport,
    SummaryReport,
    mre_cdf,
    summarize_records,
)


def _metrics(violated=False, mre=0.1, missing=0.2, margin=0.05, cosine=0.01,
             ofm=0, bias=1.0):
    if violated:
        return QueryMetrics.violated(bins_in_gt=10)
    return QueryMetrics(
        tr_violated=False,
        bins_delivered=8,
        bins_in_gt=10,
        missing_bins=missing,
        rel_error_avg=mre,
        rel_error_stdev=mre / 2,
        smape=mre / 2,
        cosine_distance=cosine,
        margin_avg=margin,
        margin_stdev=margin / 2,
        bins_out_of_margin=ofm,
        bias=bias,
    )


def _record(query_id=0, workflow_type="mixed", violated=False, mre=0.1,
            **metric_kwargs):
    return QueryRecord(
        query_id=query_id,
        interaction_id=query_id,
        viz_name=f"viz_{query_id}",
        driver="idea-sim",
        data_size="M",
        think_time=1.0,
        time_requirement=3.0,
        workflow="wf_0",
        workflow_type=workflow_type,
        start_time=float(query_id),
        end_time=float(query_id) + 0.5,
        metrics=_metrics(violated=violated, mre=mre, **metric_kwargs),
        bin_dims=1,
        binning_type="nominal",
        agg_type="count",
        rows_processed=1000,
        fraction=0.1,
        num_concurrent=1,
        qualifying_fraction=0.5,
    )


class TestDetailedReport:
    def test_csv_has_table1_columns(self):
        report = DetailedReport([_record(0), _record(1, violated=True)])
        buffer = io.StringIO()
        report.to_csv(buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert len(rows) == 2
        for expected in ("id", "tr_violated", "bins_in_gt", "rel_error_avg",
                         "missing_bins", "cosine_distance", "margin_avg",
                         "agg_type", "binning_type", "think_time", "time_req"):
            assert expected in rows[0]

    def test_nan_rendered_as_empty(self):
        report = DetailedReport([_record(0, violated=True)])
        row = report.rows()[0]
        assert row["rel_error_avg"] == ""
        assert row["tr_violated"] is True

    def test_file_round_trip(self, tmp_path):
        report = DetailedReport([_record(i) for i in range(3)])
        path = tmp_path / "detail.csv"
        report.to_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[2]["id"] == "2"

    def test_len(self):
        assert len(DetailedReport([_record(0)])) == 1


class TestSummarize:
    def test_groups_plus_all(self):
        records = [
            _record(0, workflow_type="mixed"),
            _record(1, workflow_type="mixed", violated=True),
            _record(2, workflow_type="one_to_n"),
        ]
        rows = summarize_records(records)
        groups = [row.group for row in rows]
        assert groups == ["mixed", "one_to_n", "all"]
        mixed = rows[0]
        assert mixed.num_queries == 2
        assert mixed.pct_tr_violated == pytest.approx(50.0)

    def test_violated_counts_as_fully_missing(self):
        records = [_record(0, missing=0.0), _record(1, violated=True)]
        total = summarize_records(records)[-1]
        assert total.mean_missing_bins == pytest.approx(0.5)

    def test_value_metrics_over_answered_only(self):
        records = [_record(0, mre=0.4), _record(1, violated=True)]
        total = summarize_records(records)[-1]
        assert total.mre_median == pytest.approx(0.4)

    def test_area_above_cdf_truncates_at_one(self):
        records = [_record(0, mre=0.5), _record(1, mre=5.0)]
        total = summarize_records(records)[-1]
        # mean(min(mre,1)) = (0.5 + 1.0)/2
        assert total.mre_area_above_cdf == pytest.approx(0.75)

    def test_all_violated_yields_nan_value_metrics(self):
        records = [_record(0, violated=True), _record(1, violated=True)]
        total = summarize_records(records)[-1]
        assert total.pct_tr_violated == 100.0
        assert math.isnan(total.mre_median)

    def test_custom_group_key(self):
        records = [_record(0), _record(1)]
        rows = summarize_records(records, group_key=lambda r: r.driver)
        assert rows[0].group == "idea-sim"

    def test_out_of_margin_rate(self):
        records = [_record(0, ofm=4)]  # 4 of 8 delivered bins
        total = summarize_records(records)[-1]
        assert total.out_of_margin_rate == pytest.approx(0.5)


class TestMreCdf:
    def test_cdf_shape(self):
        records = [_record(i, mre=m) for i, m in enumerate([0.1, 0.3, 0.9, 2.0])]
        points = mre_cdf(records, points=11)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs[0] == 0.0 and xs[-1] == 1.0
        assert ys == sorted(ys)  # CDF is monotone
        assert ys[-1] == pytest.approx(0.75)  # one error above 100%

    def test_violated_excluded(self):
        records = [_record(0, mre=0.2), _record(1, violated=True)]
        points = mre_cdf(records, points=3)
        assert points[-1][1] == pytest.approx(1.0)

    def test_empty_gives_nan(self):
        points = mre_cdf([_record(0, violated=True)], points=3)
        assert all(math.isnan(y) for _, y in points)


class TestSummaryReportRendering:
    def test_render_contains_groups_and_metrics(self):
        records = [
            _record(0, workflow_type="mixed"),
            _record(1, workflow_type="sequential", violated=True),
        ]
        text = SummaryReport(records).render("test title")
        assert "test title" in text
        assert "mixed" in text and "sequential" in text and "all" in text
        assert "%" in text

    def test_nan_rendered_as_dash(self):
        text = SummaryReport([_record(0, violated=True)]).render()
        assert "—" in text
