"""Tests for the copula statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.common.errors import DataGenerationError
from repro.data.stats import (
    NominalInverseCdf,
    NumericInverseCdf,
    correlation_of_scores,
    empirical_correlation,
    gaussian_to_uniform,
    normal_scores,
    safe_cholesky,
    spearman_correlation,
)


class TestNormalScores:
    def test_scores_are_standard_normal_ish(self, rng):
        values = rng.exponential(5.0, size=5_000)
        scores = normal_scores(values, rng)
        assert abs(scores.mean()) < 0.05
        assert abs(scores.std() - 1.0) < 0.05

    def test_monotone_in_rank_without_ties(self, rng):
        values = np.array([5.0, 1.0, 3.0])
        scores = normal_scores(values, rng)
        assert scores[1] < scores[2] < scores[0]

    def test_finite_for_all_inputs(self, rng):
        values = np.array([1.0] * 100)  # all tied
        scores = normal_scores(values, rng)
        assert np.isfinite(scores).all()

    def test_empty_rejected(self, rng):
        with pytest.raises(DataGenerationError):
            normal_scores(np.array([]), rng)


class TestSafeCholesky:
    def test_identity(self):
        lower = safe_cholesky(np.eye(3))
        assert np.allclose(lower, np.eye(3))

    def test_reconstructs_matrix(self, rng):
        a = rng.normal(size=(4, 4))
        sigma = a @ a.T + 4 * np.eye(4)
        lower = safe_cholesky(sigma)
        assert np.allclose(lower @ lower.T, sigma, atol=1e-8)

    def test_jitters_singular_matrix(self):
        singular = np.ones((3, 3))  # rank 1, PSD
        lower = safe_cholesky(singular)
        assert np.allclose(lower @ lower.T, singular, atol=1e-4)

    def test_rejects_indefinite_matrix(self):
        indefinite = np.array([[1.0, 0.0], [0.0, -5.0]])
        with pytest.raises(DataGenerationError):
            safe_cholesky(indefinite)

    def test_rejects_non_square(self):
        with pytest.raises(DataGenerationError):
            safe_cholesky(np.zeros((2, 3)))


class TestNumericInverseCdf:
    def test_recovers_quantiles(self):
        cdf = NumericInverseCdf.fit(np.arange(101, dtype=np.float64))
        assert cdf.apply(np.array([0.0]))[0] == pytest.approx(0.0)
        assert cdf.apply(np.array([1.0]))[0] == pytest.approx(100.0)
        assert cdf.apply(np.array([0.5]))[0] == pytest.approx(50.0)

    def test_integer_columns_stay_integer(self):
        cdf = NumericInverseCdf.fit(np.array([1, 2, 3], dtype=np.int64))
        out = cdf.apply(np.array([0.3, 0.9]))
        assert out.dtype == np.int64

    def test_clips_out_of_range_uniforms(self):
        cdf = NumericInverseCdf.fit(np.array([10.0, 20.0]))
        assert cdf.apply(np.array([-0.5]))[0] == pytest.approx(10.0)
        assert cdf.apply(np.array([1.5]))[0] == pytest.approx(20.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_output_within_sample_range(self, values):
        cdf = NumericInverseCdf.fit(np.array(values))
        out = cdf.apply(np.linspace(0, 1, 17))
        assert out.min() >= min(values) - 1e-9
        assert out.max() <= max(values) + 1e-9


class TestNominalInverseCdf:
    def test_preserves_marginals(self, rng):
        values = np.array(["a"] * 700 + ["b"] * 200 + ["c"] * 100)
        cdf = NominalInverseCdf.fit(values)
        out = cdf.apply(rng.random(20_000))
        frequencies = {c: (out == c).mean() for c in "abc"}
        assert frequencies["a"] == pytest.approx(0.7, abs=0.02)
        assert frequencies["b"] == pytest.approx(0.2, abs=0.02)
        assert frequencies["c"] == pytest.approx(0.1, abs=0.02)

    def test_categories_ordered_by_frequency(self):
        values = np.array(["rare"] + ["common"] * 9)
        cdf = NominalInverseCdf.fit(values)
        assert list(cdf.categories) == ["common", "rare"]

    def test_code_of_round_trips(self):
        values = np.array(["x", "y", "x", "z"])
        cdf = NominalInverseCdf.fit(values)
        codes = cdf.code_of(values)
        assert list(cdf.categories[codes]) == list(values)

    def test_code_of_unknown_value_rejected(self):
        cdf = NominalInverseCdf.fit(np.array(["a", "b"]))
        with pytest.raises(DataGenerationError):
            cdf.code_of(np.array(["zzz"]))


class TestCorrelationHelpers:
    def test_correlation_of_scores_diagonal_is_one(self, rng):
        scores = rng.normal(size=(500, 3))
        sigma = correlation_of_scores(scores)
        assert np.allclose(np.diag(sigma), 1.0)
        assert np.allclose(sigma, sigma.T)

    def test_correlation_detects_dependence(self, rng):
        x = rng.normal(size=2_000)
        scores = np.column_stack([x, x + rng.normal(0, 0.2, size=2_000)])
        sigma = correlation_of_scores(scores)
        assert sigma[0, 1] > 0.9

    def test_gaussian_to_uniform_bounds(self, rng):
        uniforms = gaussian_to_uniform(rng.normal(size=1_000))
        assert (uniforms >= 0).all() and (uniforms <= 1).all()
        assert abs(uniforms.mean() - 0.5) < 0.05

    def test_empirical_correlation_perfect(self):
        x = np.arange(10, dtype=np.float64)
        assert empirical_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_empirical_correlation_constant_column(self):
        x = np.ones(10)
        assert empirical_correlation(x, np.arange(10.0)) == 0.0

    def test_empirical_correlation_validates(self):
        with pytest.raises(DataGenerationError):
            empirical_correlation(np.array([1.0]), np.array([1.0]))

    def test_spearman_invariant_to_monotone_transform(self, rng):
        x = rng.exponential(size=1_000)
        y = x ** 3  # monotone
        assert spearman_correlation(x, y) == pytest.approx(1.0)
