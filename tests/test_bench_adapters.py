"""Tests for the Listing-1 system-adapter facade."""

import pytest

from repro.bench.adapters import SystemAdapter
from repro.common.clock import VirtualClock
from repro.common.errors import BenchmarkError
from repro.engines.columnstore import ColumnStoreEngine
from repro.engines.progressive import ProgressiveEngine
from repro.query.filters import RangePredicate
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import VizSpec


@pytest.fixture
def viz():
    return VizSpec(
        name="v0",
        source="flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )


def _adapter(engine_cls, dataset, settings, **kwargs):
    engine = engine_cls(dataset, settings, VirtualClock(), **kwargs)
    engine.prepare()
    return SystemAdapter(engine)


class TestProcessRequest:
    def test_progressive_answers_within_tr(self, flights_dataset,
                                           tiny_settings, viz):
        adapter = _adapter(ProgressiveEngine, flights_dataset, tiny_settings)
        adapter.workflow_start()
        response = adapter.process_request(viz, time_requirement=2.0)
        assert not response.tr_violated
        assert response.result is not None
        assert response.finished_at <= response.started_at + 2.0 + 1e-9

    def test_blocking_violates_tight_tr(self, flights_dataset, tiny_settings,
                                        viz):
        adapter = _adapter(ColumnStoreEngine, flights_dataset, tiny_settings)
        response = adapter.process_request(viz, time_requirement=0.05)
        assert response.tr_violated
        assert response.result is None

    def test_filter_applied(self, flights_dataset, tiny_settings, viz,
                            flights_oracle):
        adapter = _adapter(ColumnStoreEngine, flights_dataset, tiny_settings)
        filter_expr = RangePredicate("DISTANCE", 0, 300)
        response = adapter.process_request(
            viz, filter_expr=filter_expr, time_requirement=120.0
        )
        truth = flights_oracle.answer(viz.base_query(filter_expr))
        assert response.result.values == truth.values

    def test_default_tr_from_settings(self, flights_dataset, tiny_settings, viz):
        adapter = _adapter(ProgressiveEngine, flights_dataset, tiny_settings)
        adapter.workflow_start()
        response = adapter.process_request(viz)
        expected_deadline = response.started_at + tiny_settings.time_requirement
        assert response.finished_at <= expected_deadline + 1e-9

    def test_invalid_tr_rejected(self, flights_dataset, tiny_settings, viz):
        adapter = _adapter(ProgressiveEngine, flights_dataset, tiny_settings)
        with pytest.raises(BenchmarkError):
            adapter.process_request(viz, time_requirement=0.0)


class TestLifecycle:
    def test_link_vizs_forwards_speculation(self, flights_dataset,
                                            tiny_settings, viz):
        adapter = _adapter(
            ProgressiveEngine, flights_dataset, tiny_settings, speculation=True
        )
        adapter.workflow_start()
        target = VizSpec(
            name="v1",
            source="flights",
            bins=(BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=20.0),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        query = target.base_query(None)
        adapter.link_vizs(viz, target, speculative_queries=[query])
        clock = adapter.engine.clock
        clock.advance_to(clock.now() + 5.0)
        adapter.engine.advance_to(clock.now())
        assert adapter.engine.speculative_tuples(query) > 0

    def test_delete_vizs_cancels_active_query(self, flights_dataset,
                                              tiny_settings, viz):
        adapter = _adapter(ColumnStoreEngine, flights_dataset, tiny_settings)
        adapter.process_request(viz, time_requirement=0.05)
        adapter.delete_vizs([viz])  # must not raise (idempotent cancel)

    def test_workflow_start_end_delegate(self, flights_dataset, tiny_settings,
                                         viz):
        adapter = _adapter(ProgressiveEngine, flights_dataset, tiny_settings)
        adapter.workflow_start()
        adapter.process_request(viz, time_requirement=1.0)
        adapter.workflow_end()
