"""Streaming telemetry: windowed series, SLO watchdog, push protocol.

The load-bearing guarantees (docs/observability.md):

* the incremental window fold is **bitwise-equal** to a from-scratch
  recompute of the same event stream — fuzzed over seeded random
  streams with growing, shrinking and empty windows;
* a STATS_SUBSCRIBE probe on a shared-engine TCP run receives a pushed
  window stream whose virtual payloads are byte-identical across
  repeated runs *and* identical to the in-process series of the same
  configuration (backlog replay makes subscription timing irrelevant);
* SLO alerts are pure functions of the windows, ride the trace as typed
  ``slo.alert`` events, and ride the pushed frames' ``alerts`` field;
* ``repro trace merge`` output is byte-deterministic and globally
  ordered by virtual time (host, then seq, break ties);
* the ``repro top`` renderer throttles on the wall clock only — the
  payloads it consumes stay the deterministic pushed bytes.
"""

import random
import threading

import pytest

from repro.common.clock import perf_seconds
from repro.common.errors import BenchmarkError, ProtocolError
from repro.common.fingerprint import canonical_json
from repro.net.protocol import (
    Hello,
    StatsPush,
    StatsSubscribe,
    StatsUnsubscribe,
    decode_body,
    encode_message,
)
from repro.obs.sink import entry_line, filter_entries, merge_traces, write_jsonl
from repro.obs.slo import SloRule, SloWatchdog, parse_rule
from repro.obs.timeseries import (
    TimeSeries,
    get_timeseries,
    recompute,
    replay,
    series_lines,
    set_timeseries,
)
from repro.obs.tracer import Tracer, set_tracer


# ----------------------------------------------------------------------
# Windowed fold semantics
# ----------------------------------------------------------------------

class TestTimeSeries:
    def test_window_boundary_is_half_open(self):
        # Window w covers [w*width, (w+1)*width): an event at exactly the
        # boundary falls into the NEXT window.
        series = TimeSeries(window=2.0)
        series.observe_record(1.9, False, latency=0.5)
        series.observe_record(2.0, True)
        series.finalize()
        assert [w["records"] for w in series.windows] == [1, 1]
        assert series.windows[0]["tr_violations"] == 0
        assert series.windows[1]["tr_violations"] == 1

    def test_gap_flushes_empty_windows(self):
        series = TimeSeries(window=1.0)
        series.observe_turn(0.5)
        series.observe_turn(4.5, queue_depth=3)
        series.finalize()
        assert len(series) == 5
        assert [w["turns"] for w in series.windows] == [1, 0, 0, 0, 1]
        assert series.windows[4]["queue_depth"] == 3

    def test_active_sessions_is_a_gauge_deltas_are_windowed(self):
        series = TimeSeries(window=1.0)
        series.session_started(0.0)
        series.session_started(0.0)
        series.session_finished(2.5)
        series.finalize()
        active = [w["active_sessions"] for w in series.windows]
        assert active == [2, 2, 1]
        assert series.windows[0]["sessions_started"] == 2
        assert series.windows[2]["sessions_finished"] == 1

    def test_kernel_counters_are_cumulative_samples(self):
        series = TimeSeries(window=1.0)
        series.observe_kernel(0.2, 1, 1)
        series.observe_kernel(1.5, 4, 2)
        series.finalize()
        first, second = series.windows
        # The first sample is the baseline (cumulative process-global
        # counters), so window 0 shows no activity of its own.
        assert (first["kernel_hits"], first["kernel_misses"]) == (0, 0)
        assert first["kernel_hit_rate"] == 0.0
        assert (second["kernel_hits"], second["kernel_misses"]) == (3, 1)
        assert second["kernel_hit_rate"] == pytest.approx(0.75)

    def test_violated_records_do_not_contribute_latency(self):
        series = TimeSeries(window=10.0)
        series.observe_record(1.0, False, latency=2.0)
        series.observe_record(2.0, True, latency=99.0)
        series.finalize()
        (window,) = series.windows
        assert window["mean_latency"] == pytest.approx(2.0)
        assert window["pct_tr_violated"] == pytest.approx(50.0)

    def test_listener_sees_every_flush_in_order(self):
        seen = []
        series = TimeSeries(window=1.0)
        series.add_listener(lambda w: seen.append(w["w"]))
        series.observe_turn(3.5)
        series.finalize()
        assert seen == [0, 1, 2, 3]
        assert seen == [w["w"] for w in series.windows]

    def test_finalize_is_idempotent_and_freezes(self):
        series = TimeSeries(window=1.0)
        series.finalize()
        series.finalize()
        assert len(series) == 1
        with pytest.raises(BenchmarkError):
            series.observe_turn(1.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(BenchmarkError):
            TimeSeries(window=0.0)
        with pytest.raises(BenchmarkError):
            recompute([], window=-1.0)

    def test_global_series_disabled_by_default(self):
        series = get_timeseries()
        assert not series.enabled

    def test_set_timeseries_swaps_and_returns_previous(self):
        fresh = TimeSeries(window=1.0)
        previous = set_timeseries(fresh)
        try:
            assert get_timeseries() is fresh
        finally:
            assert set_timeseries(previous) is fresh


# ----------------------------------------------------------------------
# The fuzz pin: incremental fold == from-scratch recompute, bitwise
# ----------------------------------------------------------------------

def _random_stream(rng: random.Random):
    """A random nondecreasing-vt event stream with bursts and gaps."""
    events = []
    vt = 0.0
    active = 0
    hits = misses = 0
    for _ in range(rng.randrange(0, 120)):
        # Bursts (vt unchanged), dense steps, and long gaps that leave
        # whole windows empty.
        vt += rng.choice([0.0, 0.0, rng.uniform(0.0, 0.4), rng.uniform(2.0, 9.0)])
        kind = rng.choice(["record", "turn", "kernel", "start", "finish"])
        if kind == "record":
            events.append(
                ("record", vt, rng.random() < 0.3, rng.uniform(0.0, 3.0))
            )
        elif kind == "turn":
            events.append(("turn", vt, rng.randrange(0, 5)))
        elif kind == "kernel":
            hits += rng.randrange(0, 3)
            misses += rng.randrange(0, 2)
            events.append(("kernel", vt, hits, misses))
        elif kind == "start":
            active += 1
            events.append(("start", vt))
        elif active > 0:
            active -= 1
            events.append(("finish", vt))
    return events


class TestFoldEqualsRecompute:
    @pytest.mark.parametrize("seed", range(25))
    def test_fuzz_bitwise_equality(self, seed):
        rng = random.Random(seed)
        events = _random_stream(rng)
        # Growing and shrinking widths exercise few-huge-windows and
        # many-tiny-windows (plenty of empties) on the same stream.
        for window in (0.25, 1.0, 3.0, 7.5):
            incremental = replay(events, window=window)
            reference = recompute(events, window=window)
            assert series_lines(incremental.windows) == series_lines(reference)

    def test_empty_stream_pins_one_empty_window(self):
        incremental = replay([], window=1.0)
        reference = recompute([], window=1.0)
        assert series_lines(incremental.windows) == series_lines(reference)
        assert len(incremental) == 1
        assert incremental.windows[0]["records"] == 0

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(BenchmarkError):
            replay([("explode", 1.0)])
        with pytest.raises(BenchmarkError):
            recompute([("explode", 1.0)])

    def test_windows_are_wall_free(self):
        # Two-axis contract: no window field may carry wall readings.
        series = replay(_random_stream(random.Random(3)), window=2.0)
        for window in series.windows:
            assert "wall" not in window


# ----------------------------------------------------------------------
# SLO watchdog
# ----------------------------------------------------------------------

class TestSlo:
    def test_parse_rule_roundtrip(self):
        rule = parse_rule("pct_tr_violated>25")
        assert rule == SloRule("pct_tr_violated", ">", 25.0)
        assert rule.label == "pct_tr_violated>25"
        assert parse_rule("kernel_hit_rate<0.5").op == "<"

    @pytest.mark.parametrize("text", ["", "latency", "latency=3", "x>y"])
    def test_parse_rule_rejects_malformed(self, text):
        with pytest.raises(BenchmarkError):
            parse_rule(text)

    def test_check_fires_typed_alert(self):
        rule = parse_rule("pct_tr_violated>50")
        window = {"w": 7, "vt_end": 8.0, "pct_tr_violated": 75.0}
        alert = rule.check(window)
        assert alert == {
            "rule": "pct_tr_violated>50",
            "metric": "pct_tr_violated",
            "op": ">",
            "threshold": 50.0,
            "value": 75.0,
            "w": 7,
            "vt": 8.0,
        }
        assert rule.check({"w": 8, "vt_end": 9.0, "pct_tr_violated": 50.0}) is None
        assert rule.check({"w": 9, "vt_end": 10.0}) is None  # metric absent

    def test_watchdog_attaches_and_traces_alerts(self):
        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            watchdog = SloWatchdog(["records>2", "mean_latency>99"])
            series = TimeSeries(window=1.0)
            fired = []
            series.add_listener(
                lambda w: fired.extend(watchdog.evaluate(w))
            )
            for vt in (0.1, 0.2, 0.3, 0.4):
                series.observe_record(vt, False, latency=0.5)
            series.finalize()
        finally:
            set_tracer(previous)
        assert [alert["rule"] for alert in fired] == ["records>2"]
        assert watchdog.alerts == fired
        events = [e for e in tracer.entries() if e["name"] == "slo.alert"]
        assert len(events) == 1
        assert events[0]["vt"] == 1.0
        assert events[0]["attrs"]["rule"] == "records>2"

    def test_alerts_are_deterministic_across_replays(self):
        events = _random_stream(random.Random(11))
        runs = []
        for _ in range(2):
            watchdog = SloWatchdog(["records>1", "queue_depth>2"])
            for window in replay(events, window=2.0).windows:
                watchdog.evaluate(window)
            runs.append([canonical_json(a) for a in watchdog.alerts])
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# Wire protocol: subscribe / push / unsubscribe, HELLO correlation
# ----------------------------------------------------------------------

class TestStreamProtocol:
    def test_subscribe_unsubscribe_roundtrip(self):
        for message in (StatsSubscribe(), StatsUnsubscribe()):
            decoded = decode_body(encode_message(message)[4:])
            assert type(decoded) is type(message)
            assert decoded.TYPE == message.TYPE

    def test_stats_push_roundtrip(self):
        push = StatsPush(
            seq=3,
            window={"w": 3, "records": 5},
            alerts=({"rule": "records>2", "value": 5},),
        )
        decoded = decode_body(encode_message(push)[4:])
        assert decoded == push
        final = decode_body(encode_message(StatsPush(seq=9, final=True))[4:])
        assert final.final and final.window is None and final.alerts == ()

    def test_stats_push_rejects_malformed(self):
        with pytest.raises(ProtocolError):
            decode_body(
                encode_message(StatsPush(seq=0))[4:].replace(
                    b'"seq":0', b'"seq":"x"'
                )
            )

    def test_hello_omits_empty_correlation_fields(self):
        plain = encode_message(Hello(role="server"))
        assert b'"run"' not in plain and b'"host"' not in plain
        stamped = decode_body(
            encode_message(Hello(role="server", run="r1", host="server"))[4:]
        )
        assert (stamped.run, stamped.host) == ("r1", "server")


# ----------------------------------------------------------------------
# Trace correlation: merge + filters
# ----------------------------------------------------------------------

def _entry(vt, host, seq, kind="event", session=None, name="x"):
    entry = {"kind": kind, "name": name, "seq": seq, "vt": vt, "host": host}
    if session is not None:
        entry["session"] = session
    return entry


class TestMergeAndFilter:
    def test_merge_orders_by_vt_then_host_then_seq(self, tmp_path):
        server = [
            _entry(0.0, "server", 0),
            _entry(2.0, "server", 1),
        ]
        client = [
            _entry(2.0, "client-0", 0),
            _entry(1.0, "client-0", 1),
        ]
        a, b = tmp_path / "server.jsonl", tmp_path / "client.jsonl"
        write_jsonl(a, server)
        write_jsonl(b, client)
        merged = merge_traces([a, b])
        assert [(e["vt"], e["host"], e["seq"]) for e in merged] == [
            (0.0, "server", 0),
            (1.0, "client-0", 1),
            (2.0, "client-0", 0),
            (2.0, "server", 1),
        ]
        # Byte determinism: input file order must not matter.
        again = merge_traces([b, a])
        assert [entry_line(e) for e in again] == [entry_line(e) for e in merged]

    def test_filter_entries_composes_session_and_kind(self):
        entries = [
            _entry(0.0, "h", 0, kind="span", session="s-0"),
            _entry(1.0, "h", 1, kind="event", session="s-0"),
            _entry(2.0, "h", 2, kind="event", session="s-1"),
        ]
        assert len(list(filter_entries(entries))) == 3
        assert [
            e["seq"] for e in filter_entries(entries, session="s-0")
        ] == [0, 1]
        assert [
            e["seq"] for e in filter_entries(entries, kind="event")
        ] == [1, 2]
        assert [
            e["seq"]
            for e in filter_entries(entries, session="s-0", kind="event")
        ] == [1]

    def test_cli_trace_merge_is_deterministic(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(a, [_entry(1.0, "server", 0), _entry(3.0, "server", 1)])
        write_jsonl(b, [_entry(2.0, "client-0", 0)])
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        assert main(["trace", "merge", str(a), str(b), "--out", str(out1)]) == 0
        assert main(["trace", "merge", str(b), str(a), "--out", str(out2)]) == 0
        capsys.readouterr()
        assert out1.read_bytes() == out2.read_bytes()
        hosts = [
            entry["host"]
            for entry in merge_traces([out1])
        ]
        assert hosts == ["server", "client-0", "server"]

    def test_cli_summary_rejects_multiple_files(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(a, [_entry(1.0, "h", 0)])
        write_jsonl(b, [_entry(2.0, "h", 0)])
        assert main(["trace", "summary", str(a), str(b)]) == 1
        assert "merge" in capsys.readouterr().err


# ----------------------------------------------------------------------
# End to end: pushed stream == in-process series, byte for byte
# ----------------------------------------------------------------------

STREAM_WINDOW = 2.0


@pytest.fixture(scope="module")
def primed_ctx(server_ctx):
    """The shared context with every lazy computation already done.

    Kernel hit/miss deltas are only a pure function of the run once the
    context's first-use work (oracle, scaled tables) is out of the way;
    one throwaway run of the compared workload warms all of it.
    """
    from repro.server import SessionManager

    SessionManager.for_engine(
        server_ctx, "idea-sim", 2, per_session=1, share_engine=True
    ).run()
    return server_ctx


def _reference_windows(server_ctx):
    """In-process shared run of the same config, fresh series installed."""
    from repro.engines.kernel_cache import clear_kernel_cache
    from repro.server import SessionManager

    # Cold kernel cache: the windows' hit/miss deltas depend on what is
    # already compiled, so every compared run starts from the same state.
    clear_kernel_cache()
    series = TimeSeries(window=STREAM_WINDOW)
    previous = set_timeseries(series)
    try:
        SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, share_engine=True
        ).run()
    finally:
        set_timeseries(previous)
    return series.windows


def _streamed_run(server_ctx, slo_rules=()):
    """One shared TCP run with a probe subscribed before the population."""
    from repro.engines.kernel_cache import clear_kernel_cache
    from repro.net.client import fetch_scripted_session, stream_server_stats
    from repro.net.server import ServerThread, TcpSessionServer

    clear_kernel_cache()
    server = TcpSessionServer(
        server_ctx,
        "idea-sim",
        share_engine=True,
        max_sessions=2,
        per_session=1,
        stats_window=STREAM_WINDOW,
        slo_rules=slo_rules,
    )
    pushes = []
    with ServerThread(server) as (host, port):
        probe = threading.Thread(
            target=lambda: pushes.extend(stream_server_stats(host, port)),
            daemon=True,
        )
        probe.start()
        peer = threading.Thread(
            target=fetch_scripted_session,
            args=(host, port, 1),
            kwargs={"per_session": 1},
            daemon=True,
        )
        peer.start()
        fetch_scripted_session(host, port, 0, per_session=1)
        peer.join(120)
        probe.join(120)
    assert not probe.is_alive(), "probe never saw the final frame"
    return pushes


class TestStreamingEndToEnd:
    def test_pushed_stream_matches_in_process_series(self, primed_ctx):
        reference = series_lines(_reference_windows(primed_ctx))
        first = _streamed_run(primed_ctx)
        second = _streamed_run(primed_ctx)
        for pushes in (first, second):
            assert pushes, "no frames pushed"
            # iter_stats consumes the final=True closing frame itself,
            # so every returned push carries a window.
            payload = [canonical_json(p.window) for p in pushes]
            assert payload == reference
            assert [p.seq for p in pushes] == list(range(len(pushes)))

    def test_slo_alerts_ride_the_pushed_frames(self, primed_ctx):
        # records>0 must fire on every non-empty window of this config.
        pushes = _streamed_run(primed_ctx, slo_rules=("records>0",))
        fired = [p for p in pushes if p.alerts]
        assert fired, "rule never fired"
        for push in fired:
            (alert,) = [a for a in push.alerts if a["rule"] == "records>0"]
            assert alert["w"] == push.window["w"]
            assert alert["value"] == push.window["records"]

    def test_late_probe_replays_backlog(self, primed_ctx):
        # Subscribe AFTER the run completed: backlog replay must deliver
        # the identical stream (subscription timing is not observable).
        # The probe connects up front (the server stops accepting once
        # the population is served) but sends STATS_SUBSCRIBE only after
        # the last session's records are in.
        from repro.engines.kernel_cache import clear_kernel_cache
        from repro.net.client import NetClient, fetch_scripted_session
        from repro.net.server import ServerThread, TcpSessionServer

        reference = series_lines(_reference_windows(primed_ctx))
        clear_kernel_cache()
        server = TcpSessionServer(
            primed_ctx,
            "idea-sim",
            share_engine=True,
            max_sessions=2,
            per_session=1,
            stats_window=STREAM_WINDOW,
        )
        with ServerThread(server) as (host, port):
            with NetClient(host, port) as probe:
                probe.hello()
                peer = threading.Thread(
                    target=fetch_scripted_session,
                    args=(host, port, 1),
                    kwargs={"per_session": 1},
                    daemon=True,
                )
                peer.start()
                fetch_scripted_session(host, port, 0, per_session=1)
                peer.join(120)
                probe.subscribe_stats()
                pushes = list(probe.iter_stats())
        assert [canonical_json(p.window) for p in pushes] == reference

    def test_subscribe_rejected_when_streaming_off(self, server_ctx):
        from repro.net.client import stream_server_stats
        from repro.net.server import ServerThread, TcpSessionServer

        server = TcpSessionServer(
            server_ctx,
            "idea-sim",
            share_engine=True,
            max_sessions=2,
            per_session=1,
        )
        with ServerThread(server) as (host, port):
            with pytest.raises(ProtocolError, match="stats-window"):
                stream_server_stats(host, port)
            server.request_stop()

    def test_stats_window_requires_share_engine(self, server_ctx):
        from repro.net.server import TcpSessionServer

        with pytest.raises(BenchmarkError, match="shared-"):
            TcpSessionServer(
                server_ctx, "idea-sim", max_sessions=1, stats_window=1.0
            )


# ----------------------------------------------------------------------
# repro top: wall-throttled rendering over deterministic payloads
# ----------------------------------------------------------------------

class TestTopView:
    def _view(self, interval=1.0):
        import io

        from repro.net.top import TopView

        ticks = iter(i * 0.1 for i in range(1000))
        out = io.StringIO()
        return TopView(
            interval=interval, out=out, clock=lambda: next(ticks)
        ), out

    def test_throttles_between_renders(self):
        view, out = self._view(interval=1.0)
        windows = [{"w": i, "vt_end": float(i + 1)} for i in range(12)]
        rendered = [view.observe(w) for w in windows]
        # Frame 0 renders (and prints the header); the clock advances
        # 0.1 per call, so only every 10th frame clears the interval.
        assert rendered[0] is True
        assert sum(rendered) < len(windows)
        assert view.dropped == len(windows) - view.rendered

    def test_alert_frames_always_render(self):
        view, out = self._view(interval=1e9)
        view.observe({"w": 0, "vt_end": 1.0})
        assert view.observe(
            {"w": 1, "vt_end": 2.0}, alerts=({"rule": "records>0"},)
        )
        assert "records>0" in out.getvalue()
        assert view.alerts_seen == 1

    def test_close_rerenders_last_dropped_window(self):
        view, out = self._view(interval=1e9)
        view.observe({"w": 0, "vt_end": 1.0})
        view.observe({"w": 1, "vt_end": 2.0})
        assert view.dropped == 1
        view.close()
        text = out.getvalue()
        assert "    2.0" in text
        assert "stream ended" in text

    def test_default_clock_is_swappable_perf_seconds(self):
        from repro.net import top as top_module

        assert top_module.TopView().interval == 1.0
        assert top_module.perf_seconds is perf_seconds


class TestFollowPrinterClock:
    def test_default_clock_is_perf_seconds(self):
        from repro.server.report import FollowPrinter

        assert FollowPrinter(1)._clock is perf_seconds
