"""Tests for the interaction policies (the adaptive-user hook)."""

import pytest

from repro.bench.driver import SessionDriver
from repro.bench.experiments import make_engine
from repro.common.clock import VirtualClock
from repro.common.errors import BenchmarkError, WorkflowError
from repro.workflow.graph import VizGraph
from repro.workflow.policy import (
    LOW_CARDINALITY_BINS,
    MarkovPolicy,
    PolicyView,
    ReplayPolicy,
    UncertaintyChaserPolicy,
    interaction_mix,
    make_policy,
    mix_distance,
)
from repro.workflow.generator import WorkflowGenerator
from repro.workflow.spec import CreateViz, SetFilter, WorkflowType


@pytest.fixture(scope="module")
def generator(flights_profiles):
    return WorkflowGenerator(flights_profiles, table="flights", seed=3)


def _view(graph=None, records=(), index=0):
    return PolicyView(
        session_id="session-0",
        workflow_index=0,
        interaction_index=index,
        graph=graph if graph is not None else VizGraph(),
        records=list(records),
    )


class TestReplayPolicy:
    def test_replays_interactions_in_order(self, generator):
        workflows = generator.generate_suite(WorkflowType.MIXED, 2)
        policy = ReplayPolicy(workflows)
        for wf_index, workflow in enumerate(workflows):
            plan = policy.begin_workflow(wf_index)
            assert plan.name == workflow.name
            assert plan.workflow_type is workflow.workflow_type
            view = _view()
            replayed = []
            while True:
                view = PolicyView(
                    "session-0", wf_index, len(replayed), VizGraph(), []
                )
                interaction = policy.next_interaction(view)
                if interaction is None:
                    break
                replayed.append(interaction)
            assert tuple(replayed) == workflow.interactions
        assert policy.begin_workflow(len(workflows)) is None

    def test_requires_workflows(self):
        with pytest.raises(WorkflowError):
            ReplayPolicy([])


class TestMarkovPolicy:
    def test_workflows_are_structurally_valid(self, generator):
        policy = MarkovPolicy(generator, per_session=2, seed=7)
        for wf_index in range(2):
            plan = policy.begin_workflow(wf_index)
            assert plan is not None
            graph = VizGraph()
            emitted = 0
            while True:
                interaction = policy.next_interaction(
                    _view(graph, index=emitted)
                )
                if interaction is None:
                    break
                graph.apply(interaction)  # raises on invalid interactions
                emitted += 1
            config = generator.config
            assert config.interactions_min <= emitted <= config.interactions_max
        assert policy.begin_workflow(2) is None

    def test_deterministic_given_seed(self, generator):
        def trail(seed):
            policy = MarkovPolicy(generator, per_session=1, seed=seed)
            policy.begin_workflow(0)
            graph = VizGraph()
            kinds = []
            while True:
                interaction = policy.next_interaction(
                    _view(graph, index=len(kinds))
                )
                if interaction is None:
                    break
                graph.apply(interaction)
                kinds.append(interaction.kind)
            return kinds

        assert trail(11) == trail(11)
        assert trail(11) != trail(12)

    def test_reacts_to_empty_result_by_clearing_filter(self, generator):
        policy = MarkovPolicy(generator, per_session=1, seed=7)
        policy.begin_workflow(0)
        graph = VizGraph()
        first = policy.next_interaction(_view(graph))
        graph.apply(first)
        viz_name = first.viz.name
        # Give the viz a filter so the reaction has something to clear.
        node = graph.node(viz_name)
        node.own_filter = generator.sample_filter(
            __import__("numpy").random.default_rng(0), node.spec
        )

        class _Metrics:
            tr_violated = False
            bins_delivered = LOW_CARDINALITY_BINS

        class _Record:
            metrics = _Metrics()

        record = _Record()
        record.viz_name = viz_name
        policy.observe(record)
        reaction = policy.next_interaction(_view(graph, index=1))
        assert isinstance(reaction, SetFilter)
        assert reaction.viz_name == viz_name
        assert reaction.filter is None


class TestUncertaintyChaserPolicy:
    def test_chases_widest_margins(self, generator):
        policy = UncertaintyChaserPolicy(generator, per_session=1, seed=7)
        policy.begin_workflow(0)
        graph = VizGraph()
        # Build two vizs through the policy itself.
        for index in range(2):
            interaction = policy.next_interaction(_view(graph, index=index))
            graph.apply(interaction)
            if not isinstance(interaction, CreateViz):
                break
        names = graph.viz_names
        assert names

        class _Metrics:
            tr_violated = False
            missing_bins = 0.0

        def record_for(name, margin):
            metrics = _Metrics()
            metrics.margin_avg = margin
            record = type("R", (), {})()
            record.metrics = metrics
            record.viz_name = name
            return record

        for name in names:
            policy.observe(record_for(name, 0.01))
        policy.observe(record_for(names[0], 5.0))
        assert policy._chase_target(graph) == names[0]

    def test_unqueried_vizs_are_most_uncertain(self, generator):
        policy = UncertaintyChaserPolicy(generator, per_session=1, seed=7)
        policy.begin_workflow(0)
        graph = VizGraph()
        interaction = policy.next_interaction(_view(graph))
        graph.apply(interaction)
        assert policy._chase_target(graph) == interaction.viz.name


class TestFactoryAndMix:
    def test_make_policy_names(self, generator):
        workflows = generator.generate_suite(WorkflowType.MIXED, 1)
        assert isinstance(
            make_policy("replay", workflows=workflows), ReplayPolicy
        )
        assert isinstance(
            make_policy("markov", generator=generator), MarkovPolicy
        )
        assert isinstance(
            make_policy("uncertainty", generator=generator),
            UncertaintyChaserPolicy,
        )
        with pytest.raises(WorkflowError):
            make_policy("nope", generator=generator)
        with pytest.raises(WorkflowError):
            make_policy("replay")
        with pytest.raises(WorkflowError):
            make_policy("markov")

    def test_interaction_mix_normalizes(self):
        mix = interaction_mix({"create_viz": 1, "set_filter": 3})
        assert mix == {"create_viz": 0.25, "set_filter": 0.75}
        assert interaction_mix({}) == {}

    def test_mix_distance_bounds(self):
        a = {"create_viz": 1.0}
        b = {"set_filter": 1.0}
        assert mix_distance(a, b) == pytest.approx(1.0)
        assert mix_distance(a, a) == 0.0


class TestDriverIntegration:
    """SessionDriver in policy mode (unit level; server tests go further)."""

    def test_policy_and_workflows_are_exclusive(
        self, flights_dataset, flights_oracle, tiny_settings, generator
    ):
        engine = make_engine(
            "monetdb-sim", flights_dataset, tiny_settings, VirtualClock()
        )
        workflows = generator.generate_suite(WorkflowType.MIXED, 1)
        with pytest.raises(BenchmarkError):
            SessionDriver(
                engine,
                flights_oracle,
                tiny_settings,
                workflows,
                policy=ReplayPolicy(workflows),
            )

    def test_replay_driver_matches_scripted_driver(
        self, flights_dataset, flights_oracle, tiny_settings, generator
    ):
        workflows = generator.generate_suite(WorkflowType.SEQUENTIAL, 2)

        def run(policy):
            engine = make_engine(
                "idea-sim", flights_dataset, tiny_settings, VirtualClock()
            )
            engine.prepare()
            driver = SessionDriver(
                engine,
                flights_oracle,
                tiny_settings,
                [] if policy else workflows,
                policy=policy,
            )
            return driver.run(), driver.interaction_counts

        import io

        from repro.bench.report import DetailedReport

        def csv_text(records):
            buffer = io.StringIO()
            DetailedReport(records).to_csv(buffer)
            return buffer.getvalue()

        scripted, scripted_counts = run(None)
        replayed, replayed_counts = run(ReplayPolicy(workflows))
        assert len(scripted) == len(replayed)
        assert csv_text(scripted) == csv_text(replayed)
        assert scripted_counts == replayed_counts

    def test_abandon_cancels_outstanding_work(
        self, flights_dataset, flights_oracle, tiny_settings, generator
    ):
        engine = make_engine(
            "monetdb-sim", flights_dataset, tiny_settings, VirtualClock()
        )
        engine.prepare()
        workflows = generator.generate_suite(WorkflowType.MIXED, 1)
        driver = SessionDriver(
            engine, flights_oracle, tiny_settings, workflows
        )
        # Step a few events in, then walk away mid-workflow.
        for _ in range(4):
            driver.step()
        assert not driver.finished
        driver.abandon()
        assert driver.finished
        assert driver.next_event_time() is None
        assert engine.scheduler.active_tasks() == []
        assert driver.step() == []
