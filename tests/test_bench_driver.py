"""Tests for the discrete-event benchmark driver (§4.4)."""

import numpy as np
import pytest

from repro.bench.driver import BenchmarkDriver
from repro.common.clock import VirtualClock
from repro.engines.columnstore import ColumnStoreEngine
from repro.engines.progressive import ProgressiveEngine
from repro.query.filters import RangePredicate
from repro.query.groundtruth import GroundTruthOracle
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import (
    CreateViz,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
    Workflow,
    WorkflowType,
)


def _viz(name, field="DEP_DELAY", nominal=False):
    bins = (
        (BinDimension(field, BinKind.NOMINAL),)
        if nominal
        else (BinDimension(field, BinKind.QUANTITATIVE, width=20.0),)
    )
    return VizSpec(name, "flights", bins, (Aggregate(AggFunc.COUNT),))


@pytest.fixture
def simple_workflow(flights_table):
    # Select a carrier that actually exists (the most frequent one), so
    # downstream queries have non-empty ground truth.
    import numpy as np

    carriers, counts = np.unique(
        flights_table["UNIQUE_CARRIER"], return_counts=True
    )
    top_carrier = str(carriers[np.argmax(counts)])
    return Workflow(
        name="probe",
        workflow_type=WorkflowType.CUSTOM,
        interactions=(
            CreateViz(_viz("a", "UNIQUE_CARRIER", nominal=True)),
            CreateViz(_viz("b")),
            Link("a", "b"),
            SelectBins("a", ((top_carrier,),)),
            SetFilter("b", RangePredicate("DISTANCE", 100, 800)),
        ),
    )


def _driver(engine_cls, dataset, settings, oracle=None, **engine_kwargs):
    engine = engine_cls(dataset, settings, VirtualClock(), **engine_kwargs)
    engine.prepare()
    oracle = oracle or GroundTruthOracle(dataset)
    return BenchmarkDriver(engine, oracle, settings)


class TestRunWorkflow:
    def test_one_record_per_triggered_query(self, flights_dataset,
                                            tiny_settings, flights_oracle,
                                            simple_workflow):
        driver = _driver(ProgressiveEngine, flights_dataset, tiny_settings,
                         flights_oracle)
        records = driver.run_workflow(simple_workflow)
        # create a (1) + create b (1) + link (1: b) + select (1: b) +
        # filter b (1: b) = 5 queries.
        assert len(records) == 5
        assert [r.interaction_id for r in records] == [0, 1, 2, 3, 4]

    def test_think_time_spacing(self, flights_dataset, tiny_settings,
                                flights_oracle, simple_workflow):
        settings = tiny_settings.with_(think_time=2.0, time_requirement=0.5)
        driver = _driver(ProgressiveEngine, flights_dataset, settings,
                         flights_oracle)
        records = driver.run_workflow(simple_workflow)
        starts = [r.start_time for r in records]
        assert starts == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_deadline_is_start_plus_tr(self, flights_dataset, tiny_settings,
                                       flights_oracle, simple_workflow):
        settings = tiny_settings.with_(time_requirement=1.5, think_time=3.0)
        driver = _driver(ProgressiveEngine, flights_dataset, settings,
                         flights_oracle)
        records = driver.run_workflow(simple_workflow)
        for record in records:
            assert record.end_time <= record.start_time + 1.5 + 1e-9

    def test_blocking_engine_violations_recorded(self, flights_dataset,
                                                 tiny_settings, flights_oracle,
                                                 simple_workflow):
        settings = tiny_settings.with_(time_requirement=0.05)
        driver = _driver(ColumnStoreEngine, flights_dataset, settings,
                         flights_oracle)
        records = driver.run_workflow(simple_workflow)
        assert all(r.tr_violated for r in records)
        assert all(r.metrics.missing_bins == 1.0 for r in records)

    def test_progressive_engine_mostly_answers(self, flights_dataset,
                                               tiny_settings, flights_oracle,
                                               simple_workflow):
        settings = tiny_settings.with_(time_requirement=3.0)
        driver = _driver(ProgressiveEngine, flights_dataset, settings,
                         flights_oracle)
        records = driver.run_workflow(simple_workflow)
        violations = [r for r in records if r.tr_violated]
        assert len(violations) == 0

    def test_concurrency_recorded(self, flights_dataset, tiny_settings,
                                  flights_oracle):
        workflow = Workflow(
            name="fanout",
            workflow_type=WorkflowType.CUSTOM,
            interactions=(
                CreateViz(_viz("hub", "UNIQUE_CARRIER", nominal=True)),
                CreateViz(_viz("t1")),
                Link("hub", "t1"),
                CreateViz(_viz("t2", "DISTANCE")),
                Link("hub", "t2"),
                SelectBins("hub", (("AA",),)),
            ),
        )
        driver = _driver(ProgressiveEngine, flights_dataset, tiny_settings,
                         flights_oracle)
        records = driver.run_workflow(workflow)
        final = [r for r in records if r.interaction_id == 5]
        assert len(final) == 2
        assert all(r.num_concurrent == 2 for r in final)

    def test_metrics_match_ground_truth_for_exact_engine(
        self, flights_dataset, tiny_settings, flights_oracle, simple_workflow
    ):
        settings = tiny_settings.with_(time_requirement=60.0, think_time=80.0)
        driver = _driver(ColumnStoreEngine, flights_dataset, settings,
                         flights_oracle)
        records = driver.run_workflow(simple_workflow)
        for record in records:
            assert not record.tr_violated
            assert record.metrics.rel_error_avg == pytest.approx(0.0)
            assert record.metrics.missing_bins == 0.0

    def test_records_carry_settings(self, flights_dataset, tiny_settings,
                                    flights_oracle, simple_workflow):
        driver = _driver(ProgressiveEngine, flights_dataset, tiny_settings,
                         flights_oracle)
        record = driver.run_workflow(simple_workflow)[0]
        assert record.driver == "idea-sim"
        assert record.data_size == tiny_settings.data_size.name
        assert record.time_requirement == tiny_settings.time_requirement
        assert record.workflow == "probe"
        assert record.workflow_type == "custom"
        assert record.agg_type == "count"

    def test_run_suite_concatenates(self, flights_dataset, tiny_settings,
                                    flights_oracle, simple_workflow):
        driver = _driver(ProgressiveEngine, flights_dataset, tiny_settings,
                         flights_oracle)
        other = Workflow("second", WorkflowType.CUSTOM,
                         simple_workflow.interactions)
        records = driver.run_suite([simple_workflow, other])
        assert {r.workflow for r in records} == {"probe", "second"}
        assert len(records) == 10

    def test_query_ids_unique_and_increasing(self, flights_dataset,
                                             tiny_settings, flights_oracle,
                                             simple_workflow):
        driver = _driver(ProgressiveEngine, flights_dataset, tiny_settings,
                         flights_oracle)
        records = driver.run_suite([simple_workflow])
        ids = [r.query_id for r in records]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestOverlappingInteractions:
    def test_stress_configuration_overlaps(self, flights_dataset,
                                           tiny_settings, flights_oracle,
                                           simple_workflow):
        """Paper stress setup: think 1 s < TR 10 s → queries overlap, all
        still evaluated at their own deadline."""
        settings = tiny_settings.with_(think_time=1.0, time_requirement=10.0)
        driver = _driver(ColumnStoreEngine, flights_dataset, settings,
                         flights_oracle)
        records = driver.run_workflow(simple_workflow)
        assert len(records) == 5
        for record in records:
            assert record.end_time <= record.start_time + 10.0 + 1e-9

    def test_determinism(self, flights_dataset, tiny_settings, flights_oracle,
                         simple_workflow):
        import math

        def canonical(value):
            return None if isinstance(value, float) and math.isnan(value) else value

        settings = tiny_settings.with_(think_time=1.0, time_requirement=2.0)
        results = []
        for _ in range(2):
            driver = _driver(ProgressiveEngine, flights_dataset, settings,
                             flights_oracle)
            records = driver.run_workflow(simple_workflow)
            results.append(
                [
                    (
                        canonical(r.metrics.missing_bins),
                        canonical(r.metrics.rel_error_avg),
                        canonical(r.end_time),
                    )
                    for r in records
                ]
            )
        assert results[0] == results[1]


class TestSpeculationPath:
    def test_link_passes_hint_to_engine(self, flights_dataset, tiny_settings,
                                        flights_oracle):
        workflow = Workflow(
            name="spec",
            workflow_type=WorkflowType.CUSTOM,
            interactions=(
                CreateViz(_viz("src", "UNIQUE_CARRIER", nominal=True)),
                CreateViz(_viz("dst")),
                Link("src", "dst"),
            ),
        )
        engine = ProgressiveEngine(
            flights_dataset, tiny_settings, VirtualClock(), speculation=True
        )
        engine.prepare()
        driver = BenchmarkDriver(engine, flights_oracle, tiny_settings)
        driver.run_workflow(workflow)
        # Speculative queries registered (cleared at workflow_end, so check
        # via a fresh run without workflow_end — drive manually instead).
        engine.workflow_start()
        graph_queries = []
        engine.link_vizs(
            graph_queries
        )  # no-op sanity: empty hint accepted


class TestSettingsGuard:
    def test_scale_mismatch_rejected(self, flights_dataset, tiny_settings,
                                     flights_oracle):
        from repro.common.errors import BenchmarkError

        engine = ProgressiveEngine(flights_dataset, tiny_settings, VirtualClock())
        engine.prepare()
        other = tiny_settings.with_(scale=tiny_settings.scale * 2)
        with pytest.raises(BenchmarkError):
            BenchmarkDriver(engine, flights_oracle, other)
