"""Tests for the columnar Table/Dataset storage layer."""

import io

import numpy as np
import pytest

from repro.common.errors import DataGenerationError, QueryError
from repro.data.storage import Dataset, ForeignKey, Table


@pytest.fixture
def small_table():
    return Table(
        "t",
        {
            "x": np.array([1, 2, 3, 4], dtype=np.int64),
            "y": np.array([1.5, 2.5, 3.5, 4.5]),
            "label": np.array(["a", "b", "a", "c"]),
        },
    )


class TestTableConstruction:
    def test_basic_properties(self, small_table):
        assert small_table.num_rows == 4
        assert len(small_table) == 4
        assert small_table.column_names == ["x", "y", "label"]

    def test_column_access(self, small_table):
        assert list(small_table["x"]) == [1, 2, 3, 4]
        assert "x" in small_table
        assert "zzz" not in small_table

    def test_unknown_column_raises_with_hint(self, small_table):
        with pytest.raises(QueryError, match="available"):
            small_table["missing"]

    def test_dtype_coercion(self):
        table = Table("t", {"b": np.array([True, False]), "s": ["p", "q"]})
        assert table["b"].dtype == np.int64
        assert table["s"].dtype.kind == "U"

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DataGenerationError, match="rows"):
            Table("t", {"a": [1, 2], "b": [1]})

    def test_rejects_empty_name(self):
        with pytest.raises(DataGenerationError):
            Table("", {"a": [1]})

    def test_rejects_no_columns(self):
        with pytest.raises(DataGenerationError):
            Table("t", {})

    def test_rejects_2d_arrays(self):
        with pytest.raises(DataGenerationError, match="1-D"):
            Table("t", {"a": np.zeros((2, 2))})

    def test_is_numeric(self, small_table):
        assert small_table.is_numeric("x")
        assert small_table.is_numeric("y")
        assert not small_table.is_numeric("label")

    def test_memory_bytes_positive(self, small_table):
        assert small_table.memory_bytes() > 0


class TestTableOperations:
    def test_select(self, small_table):
        mask = np.array([True, False, True, False])
        result = small_table.select(mask)
        assert result.num_rows == 2
        assert list(result["x"]) == [1, 3]

    def test_select_validates_mask(self, small_table):
        with pytest.raises(QueryError):
            small_table.select(np.array([True, False]))
        with pytest.raises(QueryError):
            small_table.select(np.array([1, 0, 1, 0]))

    def test_take(self, small_table):
        result = small_table.take(np.array([3, 0]))
        assert list(result["x"]) == [4, 1]

    def test_head(self, small_table):
        assert small_table.head(2).num_rows == 2

    def test_with_columns_adds_and_replaces(self, small_table):
        result = small_table.with_columns({"z": [0, 0, 0, 0], "x": [9, 9, 9, 9]})
        assert list(result["z"]) == [0, 0, 0, 0]
        assert list(result["x"]) == [9, 9, 9, 9]
        assert list(small_table["x"]) == [1, 2, 3, 4]  # original untouched

    def test_without_columns(self, small_table):
        result = small_table.without_columns(["y"])
        assert result.column_names == ["x", "label"]

    def test_renamed(self, small_table):
        assert small_table.renamed("other").name == "other"

    def test_rows_iteration(self, small_table):
        rows = list(small_table.rows())
        assert len(rows) == 4
        assert rows[0][0] == 1

    def test_equals(self, small_table):
        clone = Table("other", {c: small_table[c] for c in small_table.column_names})
        assert small_table.equals(clone)

    def test_not_equals_on_value_change(self, small_table):
        other = small_table.with_columns({"x": [1, 2, 3, 99]})
        assert not small_table.equals(other)

    def test_concat(self, small_table):
        doubled = Table.concat("t2", [small_table, small_table])
        assert doubled.num_rows == 8

    def test_concat_rejects_mismatched_columns(self, small_table):
        other = small_table.without_columns(["y"])
        with pytest.raises(DataGenerationError):
            Table.concat("bad", [small_table, other])

    def test_concat_rejects_empty(self):
        with pytest.raises(DataGenerationError):
            Table.concat("bad", [])


class TestCsvRoundTrip:
    def test_file_round_trip(self, small_table, tmp_path):
        path = tmp_path / "t.csv"
        small_table.to_csv(path)
        loaded = Table.from_csv(path)
        assert loaded.equals(small_table)
        assert loaded.name == "t"

    def test_stream_round_trip(self, small_table):
        buffer = io.StringIO()
        small_table.to_csv(buffer)
        buffer.seek(0)
        loaded = Table.from_csv(buffer, name="t")
        assert loaded.equals(small_table)

    def test_dtype_inference(self):
        buffer = io.StringIO("i,f,s\n1,1.5,x\n2,2.5,y\n")
        table = Table.from_csv(buffer, name="t")
        assert table["i"].dtype == np.int64
        assert table["f"].dtype == np.float64
        assert table["s"].dtype.kind == "U"

    def test_empty_csv_rejected(self):
        with pytest.raises(DataGenerationError):
            Table.from_csv(io.StringIO(""), name="t")

    def test_ragged_csv_rejected(self):
        with pytest.raises(DataGenerationError):
            Table.from_csv(io.StringIO("a,b\n1\n"), name="t")

    def test_float_round_trip_is_exact(self, tmp_path):
        table = Table("t", {"v": np.array([0.1, 1e-17, 3.14159265358979])})
        path = tmp_path / "v.csv"
        table.to_csv(path)
        assert np.array_equal(Table.from_csv(path)["v"], table["v"])


class TestDataset:
    def test_from_table(self, small_table):
        dataset = Dataset.from_table(small_table)
        assert dataset.fact_table == "t"
        assert not dataset.is_normalized
        assert dataset.num_fact_rows == 4
        assert dataset.logical_columns() == ["x", "y", "label"]

    def test_gather_column_denormalized(self, small_table):
        dataset = Dataset.from_table(small_table)
        assert np.array_equal(dataset.gather_column("x"), small_table["x"])

    def test_resolve_unknown_column(self, small_table):
        dataset = Dataset.from_table(small_table)
        with pytest.raises(QueryError, match="not reachable"):
            dataset.resolve_column("ghost")

    def test_star_schema_resolution(self):
        dim = Table("d", {"d_key": np.array([0, 1]), "name": np.array(["u", "v"])})
        fact = Table("f", {"fk": np.array([0, 1, 1, 0]), "m": np.array([1, 2, 3, 4])})
        fk = ForeignKey("fk", "d", "d_key", (("NAME", "name"),))
        dataset = Dataset({"f": fact, "d": dim}, "f", [fk])
        assert dataset.is_normalized
        assert list(dataset.gather_column("NAME")) == ["u", "v", "v", "u"]
        table, column, resolved_fk = dataset.resolve_column("NAME")
        assert (table, column) == ("d", "name")
        assert resolved_fk is fk
        # FK columns are not part of the logical schema.
        assert dataset.logical_columns() == ["m", "NAME"]

    def test_rejects_unknown_fact_table(self, small_table):
        with pytest.raises(DataGenerationError):
            Dataset({"t": small_table}, "nope")

    def test_rejects_fk_to_unknown_table(self, small_table):
        fk = ForeignKey("x", "ghost", "k", (("A", "a"),))
        with pytest.raises(DataGenerationError):
            Dataset({"t": small_table}, "t", [fk])

    def test_rejects_fk_with_missing_fact_column(self, small_table):
        fk = ForeignKey("ghost_col", "t", "x", (("A", "a"),))
        with pytest.raises(DataGenerationError):
            Dataset({"t": small_table}, "t", [fk])

    def test_total_rows(self, small_table):
        dataset = Dataset.from_table(small_table)
        assert dataset.total_rows() == 4
