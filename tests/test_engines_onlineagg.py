"""Tests for the online-aggregation engine (XDB stand-in): report
intervals, online COUNT/SUM, blocking fallback for AVG/multi-aggregate."""

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.engines.onlineagg import OnlineAggEngine
from repro.query.filters import SetPredicate
from repro.query.groundtruth import evaluate_exact
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind


@pytest.fixture
def engine(flights_dataset, tiny_settings):
    engine = OnlineAggEngine(flights_dataset, tiny_settings, VirtualClock())
    engine.prepare()
    return engine


def _run_to(engine, t):
    engine.clock.advance_to(t)
    engine.advance_to(t)


def _sum_query():
    return AggQuery(
        "flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.SUM, "DISTANCE"),),
    )


def _avg_query():
    return AggQuery(
        "flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.AVG, "DISTANCE"),),
    )


def _multi_query():
    return AggQuery(
        "flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT), Aggregate(AggFunc.SUM, "DISTANCE")),
    )


class TestOnlineCapability:
    def test_count_and_sum_online(self, carrier_count_query):
        assert OnlineAggEngine.supports_online(carrier_count_query)
        assert OnlineAggEngine.supports_online(_sum_query())

    def test_avg_not_online(self):
        assert not OnlineAggEngine.supports_online(_avg_query())

    def test_multi_aggregate_not_online(self):
        assert not OnlineAggEngine.supports_online(_multi_query())


class TestReportInterval:
    def test_no_result_before_first_tick(self, engine, carrier_count_query,
                                         tiny_settings):
        handle = engine.submit(carrier_count_query)
        before_tick = tiny_settings.report_interval * 0.6
        _run_to(engine, before_tick)
        assert engine.result_at(handle, before_tick) is None

    def test_result_available_at_tick(self, engine, carrier_count_query,
                                      tiny_settings):
        handle = engine.submit(carrier_count_query)
        at_tick = tiny_settings.report_interval * 1.2
        _run_to(engine, at_tick)
        result = engine.result_at(handle, at_tick)
        assert result is not None
        assert not result.exact

    def test_result_frozen_between_ticks(self, engine, carrier_count_query,
                                         tiny_settings):
        handle = engine.submit(carrier_count_query)
        interval = tiny_settings.report_interval
        _run_to(engine, 2 * interval + 0.9 * interval)
        at_tick = engine.result_at(handle, 2 * interval)
        mid = engine.result_at(handle, 2 * interval + 0.8 * interval)
        assert mid.rows_processed == at_tick.rows_processed

    def test_estimates_improve_across_ticks(self, engine, _q=None):
        query = _sum_query()
        handle = engine.submit(query)
        _run_to(engine, 10.0)
        early = engine.result_at(handle, 0.5)
        late = engine.result_at(handle, 10.0)
        assert late.rows_processed > early.rows_processed


class TestFallback:
    def test_avg_blocks_until_completion(self, engine):
        handle = engine.submit(_avg_query())
        _run_to(engine, 1.0)
        assert engine.result_at(handle, 1.0) is None  # no intermediate results

    def test_fallback_eventually_exact(self, engine, flights_dataset):
        query = _avg_query()
        handle = engine.submit(query)
        _run_to(engine, 2000.0)
        result = engine.result_at(handle, 2000.0)
        assert result is not None and result.exact
        assert result.values == evaluate_exact(flights_dataset, query).values

    def test_fallback_far_slower_than_online_first_result(self, engine,
                                                          tiny_settings):
        online = engine.submit(_sum_query())
        fallback = engine.submit(_avg_query())
        _run_to(engine, tiny_settings.report_interval * 4)
        now = engine.clock.now()
        assert engine.result_at(online, now) is not None
        assert engine.result_at(fallback, now) is None


class TestEstimateQuality:
    def test_count_estimates_scale_to_population(self, engine,
                                                 carrier_count_query,
                                                 flights_dataset):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 20.0)
        result = engine.result_at(handle, 20.0)
        truth = evaluate_exact(flights_dataset, carrier_count_query)
        total_estimate = sum(v[0] for v in result.values.values())
        total_truth = sum(v[0] for v in truth.values.values())
        assert total_estimate == pytest.approx(total_truth, rel=0.15)

    def test_margins_reported(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 5.0)
        result = engine.result_at(handle, 5.0)
        assert any(m[0] is not None for m in result.margins.values())

    def test_selective_filter_reduces_bins(self, engine, flights_dataset):
        query = AggQuery(
            "flights",
            bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
            filter=SetPredicate("ORIGIN_STATE", frozenset(["CA"])),
        )
        handle = engine.submit(query)
        _run_to(engine, 1.0)
        result = engine.result_at(handle, 1.0)
        truth = evaluate_exact(flights_dataset, query)
        assert result is not None
        assert result.num_bins <= truth.num_bins


class TestOnlineJoins:
    def test_wander_join_on_star_schema(self, flights_table, tiny_settings):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        engine = OnlineAggEngine(star, tiny_settings, VirtualClock())
        engine.prepare()
        query = AggQuery(
            "flights",
            bins=(BinDimension("ORIGIN_STATE", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        handle = engine.submit(query)
        _run_to(engine, 2.0)
        result = engine.result_at(handle, 2.0)
        assert result is not None and result.num_bins > 0

    def test_join_slows_sampling_rate(self, flights_table, flights_dataset,
                                      tiny_settings):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        query = AggQuery(
            "flights",
            bins=(BinDimension("ORIGIN_STATE", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )

        def rows_after(dataset, t):
            engine = OnlineAggEngine(dataset, tiny_settings, VirtualClock())
            engine.prepare()
            handle = engine.submit(query)
            engine.clock.advance_to(t)
            engine.advance_to(t)
            return engine.result_at(handle, t).rows_processed

        assert rows_after(star, 3.0) < rows_after(flights_dataset, 3.0)

    def test_capabilities(self, engine):
        assert engine.capabilities.supports_joins
        assert engine.capabilities.progressive
