"""Tests for the shared engine machinery (base class behaviours)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import EngineError
from repro.engines.base import PreparationReport
from repro.engines.columnstore import ColumnStoreEngine
from repro.query.filters import RangePredicate
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind


@pytest.fixture
def engine(flights_dataset, tiny_settings):
    engine = ColumnStoreEngine(flights_dataset, tiny_settings, VirtualClock())
    engine.prepare()
    return engine


class TestPreparationReport:
    def test_minutes_property(self):
        report = PreparationReport(engine="x", virtual_rows=1, seconds=120.0)
        assert report.minutes == 2.0

    def test_report_components_sum(self, flights_dataset, tiny_settings):
        engine = ColumnStoreEngine(flights_dataset, tiny_settings, VirtualClock())
        report = engine.prepare()
        assert report.seconds == pytest.approx(
            sum(seconds for _name, seconds in report.components)
        )


class TestQualifyingFraction:
    def test_no_filter_is_one(self, engine, carrier_count_query):
        assert engine.qualifying_fraction(carrier_count_query) == 1.0

    def test_matches_actual_selectivity(self, engine, flights_dataset):
        column = flights_dataset.gather_column("DISTANCE")
        cutoff = float(column.mean())
        query = AggQuery(
            "flights",
            bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
            filter=RangePredicate("DISTANCE", None, cutoff),
        )
        expected = float((column < cutoff).mean())
        assert engine.qualifying_fraction(query) == pytest.approx(expected)

    def test_cached_per_filter(self, engine, carrier_count_query):
        engine.qualifying_fraction(carrier_count_query)
        assert None in engine._fraction_cache
        # Same filter object class/None key → cache hit (no recompute path
        # to observe directly; assert the cache retains the entry).
        engine.qualifying_fraction(carrier_count_query)
        assert len(engine._fraction_cache) == 1


class TestSubmitValidation:
    def test_unresolved_query_rejected(self, engine):
        query = AggQuery(
            "flights",
            bins=(BinDimension("DISTANCE", BinKind.QUANTITATIVE, bin_count=10),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        with pytest.raises(EngineError, match="resolved"):
            engine.submit(query)

    def test_result_before_submission_time_rejected(self, engine,
                                                    carrier_count_query):
        engine.clock.advance_to(5.0)
        engine.advance_to(5.0)
        handle = engine.submit(carrier_count_query)
        with pytest.raises(EngineError):
            engine.result_at(handle, 1.0)

    def test_handles_are_sequential(self, engine, carrier_count_query,
                                    delay_avg_query):
        first = engine.submit(carrier_count_query)
        second = engine.submit(delay_avg_query)
        assert second == first + 1


class TestShuffle:
    def test_shuffle_is_a_permutation(self, engine):
        import numpy as np

        shuffle = engine._shuffled_indices()
        assert len(shuffle) == engine.actual_rows
        assert np.array_equal(np.sort(shuffle), np.arange(engine.actual_rows))

    def test_shuffle_deterministic_per_stream(self, engine):
        import numpy as np

        assert np.array_equal(
            engine._shuffled_indices("a"), engine._shuffled_indices("a")
        )
        assert not np.array_equal(
            engine._shuffled_indices("a"), engine._shuffled_indices("b")
        )
