"""Tests for the processor-sharing scheduler."""

import math

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.common.clock import VirtualClock
from repro.common.errors import EngineError
from repro.engines.scheduler import ProcessorSharingScheduler


@pytest.fixture
def setup():
    clock = VirtualClock()
    return clock, ProcessorSharingScheduler(clock)


def _advance(clock, scheduler, t):
    clock.advance_to(t)
    scheduler.advance_to(t)


class TestSingleTask:
    def test_exclusive_task_finishes_after_its_work(self, setup):
        clock, scheduler = setup
        task = scheduler.add_task(2.0)
        _advance(clock, scheduler, 1.0)
        assert scheduler.finished_at(task) is None
        assert scheduler.work_done(task) == pytest.approx(1.0)
        _advance(clock, scheduler, 2.0)
        assert scheduler.finished_at(task) == pytest.approx(2.0)

    def test_zero_work_finishes_immediately(self, setup):
        clock, scheduler = setup
        task = scheduler.add_task(0.0)
        assert scheduler.finished_at(task) == 0.0

    def test_open_ended_task_never_finishes(self, setup):
        clock, scheduler = setup
        task = scheduler.add_task(math.inf)
        _advance(clock, scheduler, 100.0)
        assert scheduler.finished_at(task) is None
        assert scheduler.work_done(task) == pytest.approx(100.0)

    def test_validation(self, setup):
        _clock, scheduler = setup
        with pytest.raises(EngineError):
            scheduler.add_task(-1.0)
        with pytest.raises(EngineError):
            scheduler.add_task(1.0, weight=0.0)
        with pytest.raises(EngineError):
            scheduler.work_done(999)


class TestFairSharing:
    def test_two_equal_tasks_take_twice_as_long(self, setup):
        clock, scheduler = setup
        a = scheduler.add_task(1.0)
        b = scheduler.add_task(1.0)
        _advance(clock, scheduler, 2.0)
        assert scheduler.finished_at(a) == pytest.approx(2.0)
        assert scheduler.finished_at(b) == pytest.approx(2.0)

    def test_short_task_departure_speeds_up_remainder(self, setup):
        clock, scheduler = setup
        short = scheduler.add_task(0.5)
        long = scheduler.add_task(2.0)
        _advance(clock, scheduler, 10.0)
        # short gets 1/2 rate until it finishes at t=1.0;
        # long then has 2.0-0.5=1.5 left at full rate → finishes 2.5.
        assert scheduler.finished_at(short) == pytest.approx(1.0)
        assert scheduler.finished_at(long) == pytest.approx(2.5)

    def test_late_arrival_shares_capacity(self, setup):
        clock, scheduler = setup
        first = scheduler.add_task(2.0)
        _advance(clock, scheduler, 1.0)
        second = scheduler.add_task(1.0)
        _advance(clock, scheduler, 10.0)
        # At t=1 first has 1.0 left; both share until first finishes at 3.0;
        # second then has 1.0 - 1.0 = 0 → also 3.0.
        assert scheduler.finished_at(first) == pytest.approx(3.0)
        assert scheduler.finished_at(second) == pytest.approx(3.0)

    def test_weights_bias_service(self, setup):
        clock, scheduler = setup
        heavy = scheduler.add_task(math.inf, weight=3.0)
        light = scheduler.add_task(math.inf, weight=1.0)
        _advance(clock, scheduler, 4.0)
        assert scheduler.work_done(heavy) == pytest.approx(3.0)
        assert scheduler.work_done(light) == pytest.approx(1.0)

    def test_set_weight_takes_effect_from_now(self, setup):
        clock, scheduler = setup
        a = scheduler.add_task(math.inf, weight=1.0)
        b = scheduler.add_task(math.inf, weight=1.0)
        _advance(clock, scheduler, 2.0)
        scheduler.set_weight(a, 3.0)
        _advance(clock, scheduler, 6.0)
        assert scheduler.work_done(a) == pytest.approx(1.0 + 3.0)
        assert scheduler.work_done(b) == pytest.approx(1.0 + 1.0)


class TestCancellation:
    def test_cancelled_task_frees_capacity(self, setup):
        clock, scheduler = setup
        victim = scheduler.add_task(5.0)
        survivor = scheduler.add_task(2.0)
        _advance(clock, scheduler, 1.0)
        scheduler.cancel(victim)
        _advance(clock, scheduler, 10.0)
        # survivor had 1.5 left at t=1, full rate → finishes at 2.5.
        assert scheduler.finished_at(survivor) == pytest.approx(2.5)
        assert scheduler.finished_at(victim) is None
        assert scheduler.is_cancelled(victim)

    def test_cancel_after_finish_is_noop(self, setup):
        clock, scheduler = setup
        task = scheduler.add_task(1.0)
        _advance(clock, scheduler, 2.0)
        scheduler.cancel(task)
        assert scheduler.finished_at(task) == pytest.approx(1.0)
        assert not scheduler.is_cancelled(task)


class TestCredit:
    def test_credit_shortens_completion(self, setup):
        clock, scheduler = setup
        task = scheduler.add_task(3.0)
        scheduler.credit_work(task, 2.0)
        _advance(clock, scheduler, 5.0)
        assert scheduler.finished_at(task) == pytest.approx(1.0)

    def test_full_credit_finishes_now(self, setup):
        clock, scheduler = setup
        _advance(clock, scheduler, 1.0)
        task = scheduler.add_task(2.0)
        scheduler.credit_work(task, 99.0)
        assert scheduler.finished_at(task) == pytest.approx(1.0)

    def test_negative_credit_rejected(self, setup):
        _clock, scheduler = setup
        task = scheduler.add_task(1.0)
        with pytest.raises(EngineError):
            scheduler.credit_work(task, -0.5)


class TestHistory:
    def test_work_at_interpolates(self, setup):
        clock, scheduler = setup
        task = scheduler.add_task(4.0)
        _advance(clock, scheduler, 1.0)
        other = scheduler.add_task(math.inf)
        _advance(clock, scheduler, 3.0)
        # exclusive 0→1 (1.0 work), then half rate 1→3 (1.0 work).
        assert scheduler.work_at(task, 0.5) == pytest.approx(0.5)
        assert scheduler.work_at(task, 1.0) == pytest.approx(1.0)
        assert scheduler.work_at(task, 2.0) == pytest.approx(1.5)
        assert scheduler.work_at(task, 3.0) == pytest.approx(2.0)
        assert scheduler.work_at(other, 2.0) == pytest.approx(0.5)

    def test_work_at_before_submission_is_zero(self, setup):
        clock, scheduler = setup
        _advance(clock, scheduler, 2.0)
        task = scheduler.add_task(1.0)
        assert scheduler.work_at(task, 1.0) == 0.0

    def test_work_at_future_rejected(self, setup):
        clock, scheduler = setup
        task = scheduler.add_task(1.0)
        with pytest.raises(EngineError):
            scheduler.work_at(task, 5.0)

    def test_settle_backwards_rejected(self, setup):
        clock, scheduler = setup
        _advance(clock, scheduler, 5.0)
        with pytest.raises(EngineError):
            scheduler.advance_to(1.0)


class TestActiveTasks:
    def test_lists_only_running(self, setup):
        clock, scheduler = setup
        a = scheduler.add_task(1.0)
        b = scheduler.add_task(math.inf)
        c = scheduler.add_task(math.inf)
        scheduler.cancel(c)
        _advance(clock, scheduler, 10.0)
        assert scheduler.active_tasks() == [b]


@hyp_settings(max_examples=40, deadline=None)
@given(
    works=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=6),
    horizon=st.floats(0.1, 30.0),
)
def test_conservation_property(works, horizon):
    """Property: total service handed out equals elapsed busy time.

    Processor sharing conserves capacity: the summed work done across all
    tasks equals min(horizon, total demand) (single server, unit rate).
    """
    clock = VirtualClock()
    scheduler = ProcessorSharingScheduler(clock)
    tasks = [scheduler.add_task(w) for w in works]
    clock.advance_to(horizon)
    scheduler.advance_to(horizon)
    total_done = sum(scheduler.work_done(t) for t in tasks)
    assert total_done == pytest.approx(min(horizon, sum(works)), rel=1e-9)
    # No task exceeds its demand, none is negative.
    for task, work in zip(tasks, works):
        assert -1e-12 <= scheduler.work_done(task) <= work + 1e-9


@hyp_settings(max_examples=30, deadline=None)
@given(
    works=st.lists(st.floats(0.2, 3.0), min_size=2, max_size=5),
)
def test_equal_weight_fairness_property(works):
    """Property: with equal weights, unfinished tasks have equal service."""
    clock = VirtualClock()
    scheduler = ProcessorSharingScheduler(clock)
    tasks = [scheduler.add_task(w) for w in works]
    horizon = min(works) / len(works) * 0.9  # before any completion
    clock.advance_to(horizon)
    scheduler.advance_to(horizon)
    services = [scheduler.work_done(t) for t in tasks]
    assert max(services) - min(services) < 1e-9
