"""Tests for exact evaluation and the grouped-statistics kernel."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.data.storage import Dataset, Table
from repro.query.filters import RangePredicate, SetPredicate
from repro.query.groundtruth import (
    GroundTruthOracle,
    compute_grouped_stats,
    evaluate_exact,
    query_cache_key,
)
from repro.query.model import (
    AggFunc,
    Aggregate,
    AggQuery,
    BinDimension,
    BinKind,
)


@pytest.fixture(scope="module")
def toy_dataset():
    table = Table(
        "toy",
        {
            "group": np.array(["a", "a", "b", "b", "b", "c"]),
            "value": np.array([10.0, 20.0, 1.0, 2.0, 3.0, 100.0]),
            "weight": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
        },
    )
    return Dataset.from_table(table)


def _query(aggregates, filter_expr=None, bins=None):
    return AggQuery(
        "toy",
        bins=bins or (BinDimension("group", BinKind.NOMINAL),),
        aggregates=aggregates,
        filter=filter_expr,
    )


class TestEvaluateExact:
    def test_count(self, toy_dataset):
        result = evaluate_exact(toy_dataset, _query((Aggregate(AggFunc.COUNT),)))
        assert result.values == {("a",): (2.0,), ("b",): (3.0,), ("c",): (1.0,)}
        assert result.exact
        assert result.fraction == 1.0

    def test_sum(self, toy_dataset):
        result = evaluate_exact(
            toy_dataset, _query((Aggregate(AggFunc.SUM, "value"),))
        )
        assert result.values[("a",)] == (30.0,)
        assert result.values[("b",)] == (6.0,)

    def test_avg(self, toy_dataset):
        result = evaluate_exact(
            toy_dataset, _query((Aggregate(AggFunc.AVG, "value"),))
        )
        assert result.values[("a",)] == (15.0,)
        assert result.values[("b",)] == (2.0,)

    def test_min_max(self, toy_dataset):
        result = evaluate_exact(
            toy_dataset,
            _query((Aggregate(AggFunc.MIN, "value"), Aggregate(AggFunc.MAX, "value"))),
        )
        assert result.values[("b",)] == (1.0, 3.0)

    def test_multiple_aggregates_ordered(self, toy_dataset):
        result = evaluate_exact(
            toy_dataset,
            _query((Aggregate(AggFunc.COUNT), Aggregate(AggFunc.AVG, "value"))),
        )
        assert result.values[("a",)] == (2.0, 15.0)

    def test_filter_applies_before_grouping(self, toy_dataset):
        result = evaluate_exact(
            toy_dataset,
            _query(
                (Aggregate(AggFunc.COUNT),),
                filter_expr=RangePredicate("value", 2.0, 50.0),
            ),
        )
        assert result.values == {("a",): (2.0,), ("b",): (2.0,)}

    def test_empty_filter_result(self, toy_dataset):
        result = evaluate_exact(
            toy_dataset,
            _query(
                (Aggregate(AggFunc.COUNT),),
                filter_expr=SetPredicate("group", frozenset(["zzz"])),
            ),
        )
        assert result.values == {}
        assert result.num_bins == 0

    def test_quantitative_binning(self, toy_dataset):
        query = _query(
            (Aggregate(AggFunc.COUNT),),
            bins=(BinDimension("value", BinKind.QUANTITATIVE, width=10.0),),
        )
        result = evaluate_exact(toy_dataset, query)
        assert result.values[(0,)] == (3.0,)   # 1.0, 2.0, 3.0
        assert result.values[(1,)] == (1.0,)   # 10.0
        assert result.values[(2,)] == (1.0,)   # 20.0
        assert result.values[(10,)] == (1.0,)  # 100.0

    def test_unresolved_query_rejected(self, toy_dataset):
        query = _query(
            (Aggregate(AggFunc.COUNT),),
            bins=(BinDimension("value", BinKind.QUANTITATIVE, bin_count=3),),
        )
        with pytest.raises(QueryError):
            evaluate_exact(toy_dataset, query)


class TestGroupedStatsOnSubset:
    def test_subset_stats(self, toy_dataset):
        stats = compute_grouped_stats(
            toy_dataset,
            _query((Aggregate(AggFunc.SUM, "value"),)),
            row_indices=np.array([0, 2, 3]),
        )
        keys = dict(zip([k[0] for k in stats.keys], range(stats.num_groups)))
        assert stats.counts[keys["a"]] == 1
        assert stats.counts[keys["b"]] == 2
        assert stats.sums[0][keys["b"]] == pytest.approx(3.0)
        assert stats.rows_scanned == 3

    def test_sumsq_and_extrema(self, toy_dataset):
        stats = compute_grouped_stats(
            toy_dataset, _query((Aggregate(AggFunc.AVG, "value"),))
        )
        keys = {k[0]: g for g, k in enumerate(stats.keys)}
        b = keys["b"]
        assert stats.sumsqs[0][b] == pytest.approx(1.0 + 4.0 + 9.0)
        assert stats.mins[0][b] == 1.0
        assert stats.maxs[0][b] == 3.0

    def test_count_aggregate_has_no_moment_arrays(self, toy_dataset):
        stats = compute_grouped_stats(
            toy_dataset, _query((Aggregate(AggFunc.COUNT),))
        )
        assert stats.sums == {}

    def test_empty_subset(self, toy_dataset):
        stats = compute_grouped_stats(
            toy_dataset,
            _query((Aggregate(AggFunc.COUNT),)),
            row_indices=np.array([], dtype=np.int64),
        )
        assert stats.num_groups == 0
        assert stats.rows_aggregated == 0


class TestAgainstNumpyReference:
    """Cross-check the kernel against a brute-force reference on real data."""

    def test_matches_brute_force(self, flights_dataset, flights_table):
        query = AggQuery(
            "flights",
            bins=(
                BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=25.0),
                BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),
            ),
            aggregates=(Aggregate(AggFunc.COUNT), Aggregate(AggFunc.AVG, "DISTANCE")),
            filter=RangePredicate("AIR_TIME", 30, 200),
        )
        result = evaluate_exact(flights_dataset, query)

        mask = (flights_table["AIR_TIME"] >= 30) & (flights_table["AIR_TIME"] < 200)
        delays = flights_table["DEP_DELAY"][mask]
        carriers = flights_table["UNIQUE_CARRIER"][mask]
        distances = flights_table["DISTANCE"][mask]
        expected = {}
        for delay, carrier, distance in zip(delays, carriers, distances):
            key = (int(np.floor(delay / 25.0)), str(carrier))
            count, total = expected.get(key, (0, 0.0))
            expected[key] = (count + 1, total + float(distance))
        assert set(result.values) == set(expected)
        for key, (count, total) in expected.items():
            got_count, got_avg = result.values[key]
            assert got_count == count
            assert got_avg == pytest.approx(total / count)


class TestOracle:
    def test_caches_answers(self, toy_dataset):
        oracle = GroundTruthOracle(toy_dataset)
        query = _query((Aggregate(AggFunc.COUNT),))
        first = oracle.answer(query)
        second = oracle.answer(query)
        assert first is second
        assert oracle.hits == 1
        assert oracle.misses == 1

    def test_structurally_equal_queries_share_cache(self, toy_dataset):
        oracle = GroundTruthOracle(toy_dataset)
        oracle.answer(_query((Aggregate(AggFunc.COUNT),)))
        oracle.answer(_query((Aggregate(AggFunc.COUNT),)))
        assert oracle.hits == 1

    def test_clear(self, toy_dataset):
        oracle = GroundTruthOracle(toy_dataset)
        oracle.answer(_query((Aggregate(AggFunc.COUNT),)))
        oracle.clear()
        assert oracle.hits == 0 and oracle.misses == 0
        oracle.answer(_query((Aggregate(AggFunc.COUNT),)))
        assert oracle.misses == 1


class TestPortableCacheKeys:
    def test_structurally_equal_queries_key_identically(self):
        a = _query(
            (Aggregate(AggFunc.COUNT),),
            filter_expr=SetPredicate("group", frozenset(["a", "b", "c"])),
        )
        b = _query(
            (Aggregate(AggFunc.COUNT),),
            filter_expr=SetPredicate("group", frozenset(["c", "b", "a"])),
        )
        assert query_cache_key(a) == query_cache_key(b)

    def test_key_is_a_portable_string(self):
        key = query_cache_key(_query((Aggregate(AggFunc.COUNT),)))
        assert isinstance(key, str)
        assert len(key) == 64  # full sha256 hex: safe as a file/store key
        int(key, 16)  # hex digits only

    def test_key_identical_in_a_fresh_process(self):
        # hash(query) is salted per process; the cache key must not be.
        import subprocess
        import sys

        key = query_cache_key(
            _query(
                (Aggregate(AggFunc.COUNT),),
                filter_expr=SetPredicate("group", frozenset(["a", "b"])),
            )
        )
        program = (
            "from repro.query.groundtruth import query_cache_key\n"
            "from repro.query.model import AggFunc, Aggregate, AggQuery, "
            "BinDimension, BinKind\n"
            "from repro.query.filters import SetPredicate\n"
            "q = AggQuery('toy', bins=(BinDimension('group', BinKind.NOMINAL),),"
            " aggregates=(Aggregate(AggFunc.COUNT),),"
            " filter=SetPredicate('group', frozenset(['b', 'a'])))\n"
            "print(query_cache_key(q))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == key

    def test_different_queries_key_differently(self):
        a = _query((Aggregate(AggFunc.COUNT),))
        b = _query((Aggregate(AggFunc.SUM, "value"),))
        assert query_cache_key(a) != query_cache_key(b)

    def test_set_predicate_repr_is_canonical(self):
        predicate = SetPredicate("group", frozenset(["b", "a", "c"]))
        assert repr(predicate) == (
            "SetPredicate(field='group', values=['a', 'b', 'c'])"
        )


class TestOracleStoreBacking:
    def test_answers_shared_through_store(self, toy_dataset, tmp_path, monkeypatch):
        from repro.runtime.store import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        query = _query((Aggregate(AggFunc.COUNT),))
        first = GroundTruthOracle(toy_dataset, store=store)
        first.answer(query)
        assert first.misses == 1

        # A second oracle (fresh in-memory cache, e.g. another worker)
        # must load the persisted answer instead of recomputing.
        second = GroundTruthOracle(toy_dataset, store=store)
        import repro.query.groundtruth as groundtruth_module

        def boom(dataset, q):
            raise AssertionError("recomputed a persisted ground truth")

        monkeypatch.setattr(groundtruth_module, "evaluate_exact", boom)
        result = second.answer(query)
        assert result.values == {("a",): (2.0,), ("b",): (3.0,), ("c",): (1.0,)}
        assert second.store_hits == 1 and second.misses == 0
