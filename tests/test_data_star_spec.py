"""Tests for star-schema specification serialization and the CLI path."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.normalize import (
    DimensionSpec,
    FLIGHTS_STAR_SPEC,
    load_star_spec,
    normalize,
    save_star_spec,
)
from repro.data.storage import Table


class TestSpecSerialization:
    def test_dict_round_trip(self):
        for spec in FLIGHTS_STAR_SPEC:
            assert DimensionSpec.from_dict(spec.to_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "star.json"
        save_star_spec(FLIGHTS_STAR_SPEC, path)
        assert load_star_spec(path) == FLIGHTS_STAR_SPEC

    def test_load_rejects_non_list(self, tmp_path):
        from repro.common.errors import DataGenerationError

        path = tmp_path / "bad.json"
        path.write_text('{"table": "x"}')
        with pytest.raises(DataGenerationError):
            load_star_spec(path)

    def test_loaded_spec_normalizes(self, flights_table, tmp_path):
        path = tmp_path / "star.json"
        save_star_spec(FLIGHTS_STAR_SPEC, path)
        dataset = normalize(flights_table, load_star_spec(path))
        assert set(dataset.tables) == {"flights_fact", "airports", "carriers"}


class TestCliNormalizedExport:
    def test_default_star_schema_export(self, tmp_path):
        out = tmp_path / "star"
        code = main([
            "generate-data", "--rows", "300", "--out", str(out),
            "--normalize", "--seed", "4",
        ])
        assert code == 0
        fact = Table.from_csv(out / "flights_fact.csv")
        airports = Table.from_csv(out / "airports.csv")
        carriers = Table.from_csv(out / "carriers.csv")
        assert fact.num_rows == 300
        assert "CARRIER_KEY" in fact
        assert fact["CARRIER_KEY"].max() < carriers.num_rows
        assert "code" in airports

    def test_custom_spec_export(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        save_star_spec(
            [DimensionSpec("carriers", "CK", (("UNIQUE_CARRIER", "code"),))],
            spec_path,
        )
        out = tmp_path / "star2"
        code = main([
            "generate-data", "--rows", "200", "--out", str(out),
            "--normalize-spec", str(spec_path), "--seed", "4",
        ])
        assert code == 0
        fact = Table.from_csv(out / "flights_fact.csv")
        assert "CK" in fact
        assert "ORIGIN" in fact  # airports not normalized by this spec

    def test_seed_csv_input(self, tmp_path):
        # First produce a small CSV, then use it as a custom seed.
        seed_csv = tmp_path / "seed.csv"
        main(["generate-data", "--rows", "400", "--out", str(seed_csv),
              "--seed", "4"])
        out = tmp_path / "scaled.csv"
        code = main([
            "generate-data", "--rows", "900", "--out", str(out),
            "--seed-csv", str(seed_csv), "--seed", "4",
        ])
        assert code == 0
        scaled = Table.from_csv(out)
        assert scaled.num_rows == 900
        original = Table.from_csv(seed_csv)
        assert set(scaled.column_names) == set(original.column_names)
