"""TCP server integration tests: byte-identity, stalls, disconnects.

Runs a real :class:`~repro.net.server.TcpSessionServer` on a loopback
socket (background thread) and drives it with the blocking client
library — the same path ``repro connect`` takes. The headline assertions
extend the server subsystem's determinism guarantee across the wire:
scripted and client-driven sessions reassemble reports byte-identical to
their in-process equivalents.
"""

import socket
import struct

import pytest

from repro.common.errors import BenchmarkError, ProtocolError
from repro.net.client import (
    NetClient,
    fetch_scripted_session,
    records_csv_text,
    replay_workflow,
    scripted_csv_over_tcp,
)
from repro.net.protocol import (
    PROTOCOL_VERSION,
    Attach,
    Detach,
    Hello,
    encode_message,
)
from repro.net.server import ServerThread, TcpSessionServer
from repro.server import SessionManager
from repro.workflow.policy import (
    PENDING,
    ExternalInteractionSource,
    PolicyView,
)
from repro.workflow.spec import CreateViz


@pytest.fixture(scope="module")
def reference(server_ctx):
    """In-process serve results for 2 sessions × 1 mixed workflow."""
    return SessionManager.for_engine(
        server_ctx, "idea-sim", 2, per_session=1
    ).run()


def _server(ctx, **kwargs):
    kwargs.setdefault("max_sessions", None)
    return TcpSessionServer(ctx, "idea-sim", **kwargs)


class TestScriptedOverTcp:
    def test_byte_identical_to_in_process_serve(self, server_ctx, reference):
        with ServerThread(_server(server_ctx)) as (host, port):
            for index, expected in enumerate(reference):
                session_id, csv_text = scripted_csv_over_tcp(
                    host, port, index, per_session=1
                )
                assert session_id == expected.session_id
                assert csv_text == expected.csv_text()

    def test_detach_summary_matches_records(self, server_ctx, reference):
        with ServerThread(_server(server_ctx)) as (host, port):
            _, records, summary = fetch_scripted_session(
                host, port, 0, per_session=1
            )
        assert summary.queries == len(records) == reference[0].num_queries
        assert summary.makespan == max(r.end_time for r in records)

    def test_policy_session_over_tcp_is_deterministic(self, server_ctx):
        with ServerThread(_server(server_ctx)) as (host, port):
            _, first, _ = fetch_scripted_session(
                host, port, 0, per_session=1, policy="markov"
            )
            _, second, _ = fetch_scripted_session(
                host, port, 0, per_session=1, policy="markov"
            )
        assert records_csv_text(first) == records_csv_text(second)
        # ... and identical to the in-process policy run.
        in_process = SessionManager.for_engine(
            server_ctx, "idea-sim", 1, per_session=1, policy="markov"
        ).run()
        assert records_csv_text(first) == in_process[0].csv_text()

    def test_accelerated_pacing_changes_no_bytes(self, server_ctx, reference):
        with ServerThread(_server(server_ctx)) as (host, port):
            _, csv_text = scripted_csv_over_tcp(host, port, 0, per_session=1)
            _, records, _ = fetch_scripted_session(
                host, port, 0, per_session=1, accel=1_000_000.0
            )
        assert records_csv_text(records) == csv_text == reference[0].csv_text()

    def test_concurrent_connections_stay_isolated(self, server_ctx, reference):
        import threading

        results = {}

        def fetch(index):
            results[index] = scripted_csv_over_tcp(
                "127.0.0.1", port, index, per_session=1
            )[1]

        with ServerThread(_server(server_ctx)) as (host, port):
            threads = [
                threading.Thread(target=fetch, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
        for index, expected in enumerate(reference):
            assert results[index] == expected.csv_text()

    def test_max_sessions_stops_the_server(self, server_ctx):
        server = _server(server_ctx, max_sessions=1)
        with ServerThread(server) as (host, port):
            scripted_csv_over_tcp(host, port, 0, per_session=1)
        assert server.sessions_served == 1


class TestClientDriven:
    def test_replay_byte_identical_to_serial(self, server_ctx, reference):
        workflow = reference[0].spec.workflows[0]
        with ServerThread(_server(server_ctx)) as (host, port):
            session_id, records, _ = replay_workflow(host, port, workflow)
        assert session_id == workflow.name
        assert records_csv_text(records) == reference[0].csv_text()

    def test_incremental_sends_equal_bulk_sends(self, server_ctx, reference):
        # Sending interaction-by-interaction (draining records between
        # sends, like a real frontend) produces the same bytes as the
        # bulk replay: wall arrival time never leaks into results.
        workflow = reference[0].spec.workflows[0]
        with ServerThread(_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                client.attach_client(
                    name=workflow.name,
                    workflow_type=workflow.workflow_type.value,
                )
                collected = []
                for interaction in workflow.interactions:
                    client.send_interaction(interaction)
                    for message in client.drain(0.05):
                        collected.append(message.record)
                client.detach()
                tail, _ = client.collect()
                collected.extend(tail)
        assert records_csv_text(collected) == reference[0].csv_text()

    def test_detach_without_interactions_is_a_clean_noop(self, server_ctx):
        # REPL `quit` / piped-stdin EOF detach before interacting: the
        # session ends with an empty summary, not an error.
        with ServerThread(_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                client.attach_client(name="empty")
                client.detach()
                records, summary = client.collect()
        assert records == []
        assert summary.queries == 0
        assert summary.makespan == 0.0

    def test_mid_session_disconnect_keeps_server_alive(
        self, server_ctx, reference
    ):
        workflow = reference[0].spec.workflows[0]
        with ServerThread(_server(server_ctx)) as (host, port):
            # Connect, send one interaction, vanish without detaching.
            client = NetClient(host, port).connect()
            client.hello()
            client.attach_client(name="ghost")
            client.send_interaction(workflow.interactions[0])
            client.drain(0.05)
            client.close()
            # The server must absorb the abandonment and serve the next
            # connection normally.
            _, csv_text = scripted_csv_over_tcp(host, port, 0, per_session=1)
        assert csv_text == reference[0].csv_text()


class TestHandshake:
    def test_hello_reports_engine_and_version(self, server_ctx):
        with ServerThread(_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                hello = client.hello()
        assert hello.version == PROTOCOL_VERSION
        assert hello.role == "server"
        assert hello.engine == "idea-sim"
        assert hello.capabilities == ()  # isolated server: no turn mode

    def test_v1_client_gets_typed_version_error(self, server_ctx):
        # v2-server/v1-client half of the negotiation matrix: the server
        # answers an old HELLO with a typed `version` ERROR frame that
        # carries its supported versions — not a generic decode failure.
        import json

        from repro.net.protocol import SUPPORTED_VERSIONS, split_frame

        with ServerThread(_server(server_ctx)) as (host, port):
            with socket.create_connection((host, port), timeout=10) as sock:
                body = json.dumps({
                    "v": 1, "type": "hello", "version": 1,
                    "role": "client", "software": "old-client",
                }).encode("utf-8")
                sock.sendall(struct.pack(">I", len(body)) + body)
                buffer = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    buffer += chunk
                    if split_frame(buffer) is not None:
                        break
        frame, _ = split_frame(buffer)
        answer = json.loads(frame.decode("utf-8"))
        assert answer["type"] == "error"
        assert answer["code"] == "version"
        assert answer["data"]["supported_versions"] == list(
            SUPPORTED_VERSIONS
        )
        assert "1" in answer["message"]

    def test_v2_client_raises_clearly_against_v1_server(self, server_ctx):
        # v1-server/v2-client half of the matrix: a fake old server
        # answers HELLO with a v1 frame; the client must surface a clear
        # ProtocolError naming the versions, not die decoding.
        import json
        import threading

        from repro.net.protocol import read_frame_async  # noqa: F401

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def fake_v1_server():
            conn, _ = listener.accept()
            with conn:
                conn.settimeout(10)
                # Swallow the client's hello (length prefix + body).
                header = conn.recv(4)
                (length,) = struct.unpack(">I", header)
                while length > 0:
                    length -= len(conn.recv(length))
                body = json.dumps({
                    "v": 1, "type": "hello", "version": 1,
                    "role": "server", "software": "old-server",
                }).encode("utf-8")
                conn.sendall(struct.pack(">I", len(body)) + body)

        thread = threading.Thread(target=fake_v1_server, daemon=True)
        thread.start()
        try:
            with NetClient("127.0.0.1", port, timeout=10) as client:
                with pytest.raises(
                    ProtocolError, match="server speaks protocol version 1"
                ):
                    client.hello()
        finally:
            listener.close()
            thread.join(10)

    def test_frame_before_hello_gets_error(self, server_ctx):
        with ServerThread(_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.send(Detach())
                with pytest.raises(ProtocolError, match="expected hello"):
                    client.read_message()

    def test_oversized_frame_gets_error(self, server_ctx):
        with ServerThread(_server(server_ctx)) as (host, port):
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(struct.pack(">I", 1 << 30))
                sock.sendall(b"x" * 64)
                with NetClient(host, port):
                    pass  # server stays up for the next connection
                answer = sock.recv(65536)
        assert b"error" in answer

    def test_unknown_workflow_type_gets_error(self, server_ctx):
        with ServerThread(_server(server_ctx)) as (host, port):
            with NetClient(host, port) as client:
                client.hello()
                client.send(Attach(mode="scripted", workflow_type="sideways"))
                with pytest.raises(ProtocolError, match="workflow type"):
                    client.read_message()


class TestExternalSource:
    """Unit tests of the stall machinery without a socket."""

    def _view(self):
        from repro.workflow.graph import VizGraph

        return PolicyView(
            session_id="s",
            workflow_index=0,
            interaction_index=0,
            graph=VizGraph(),
            records=[],
        )

    def test_pending_until_fed_then_pops_in_order(self, reference):
        source = ExternalInteractionSource()
        assert source.begin_workflow(0) is not None
        assert source.begin_workflow(1) is None
        assert source.next_interaction(self._view()) is PENDING
        first, second = reference[0].spec.workflows[0].interactions[:2]
        source.feed(first)
        source.feed(second)
        assert source.next_interaction(self._view()) is first
        assert source.next_interaction(self._view()) is second
        assert source.next_interaction(self._view()) is PENDING
        source.finish()
        assert source.next_interaction(self._view()) is None

    def test_feeding_after_finish_rejected(self, reference):
        source = ExternalInteractionSource()
        source.finish()
        with pytest.raises(BenchmarkError):
            source.feed(reference[0].spec.workflows[0].interactions[0])

    def test_driver_stalls_and_resumes(self, server_ctx, reference):
        from repro.bench.driver import SessionDriver
        from repro.bench.experiments import make_engine
        from repro.common.clock import VirtualClock

        settings = server_ctx.settings
        dataset = server_ctx.dataset(settings.data_size, False)
        oracle = server_ctx.oracle(settings.data_size, False)
        engine = make_engine("idea-sim", dataset, settings, VirtualClock(), False)
        engine.prepare()
        source = ExternalInteractionSource()
        driver = SessionDriver(
            engine, oracle, settings, [], session_id="x", policy=source
        )
        assert driver.needs_input
        with pytest.raises(BenchmarkError, match="stalled"):
            driver.step()
        workflow = reference[0].spec.workflows[0]
        source.feed(workflow.interactions[0])
        driver.resume()
        assert not driver.needs_input
        produced = []
        # Step until the driver stalls again — the first interaction
        # fires and its deadline tail drains (deadlines are steppable
        # while stalled; the grid slot is not).
        while not driver.needs_input:
            produced.extend(driver.step())
        assert driver.in_flight == 0
        assert produced  # the first create's query was evaluated
        source.finish()
        driver.resume()
        assert driver.finished
