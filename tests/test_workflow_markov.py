"""Tests for the Markov-chain machinery behind the workload generator."""

import numpy as np
import pytest

from repro.common.errors import WorkflowError
from repro.workflow.markov import MarkovChain


@pytest.fixture
def chain():
    return MarkovChain(
        states=("a", "b"),
        transitions={"a": {"a": 1.0, "b": 3.0}, "b": {"a": 1.0}},
        initial="a",
    )


class TestValidation:
    def test_rejects_empty_states(self):
        with pytest.raises(WorkflowError):
            MarkovChain(states=(), transitions={}, initial="a")

    def test_rejects_duplicate_states(self):
        with pytest.raises(WorkflowError):
            MarkovChain(states=("a", "a"), transitions={"a": {"a": 1}}, initial="a")

    def test_rejects_unknown_initial(self):
        with pytest.raises(WorkflowError):
            MarkovChain(states=("a",), transitions={"a": {"a": 1}}, initial="z")

    def test_rejects_missing_transitions(self):
        with pytest.raises(WorkflowError):
            MarkovChain(states=("a", "b"), transitions={"a": {"b": 1}}, initial="a")

    def test_rejects_unknown_successor(self):
        with pytest.raises(WorkflowError):
            MarkovChain(states=("a",), transitions={"a": {"ghost": 1}}, initial="a")

    def test_rejects_negative_weight(self):
        with pytest.raises(WorkflowError):
            MarkovChain(states=("a",), transitions={"a": {"a": -1}}, initial="a")

    def test_rejects_all_zero_weights(self):
        with pytest.raises(WorkflowError):
            MarkovChain(states=("a",), transitions={"a": {"a": 0.0}}, initial="a")


class TestSampling:
    def test_normalized_row(self, chain):
        successors, probs = chain.normalized_row("a")
        assert successors == ("a", "b")
        assert probs.sum() == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.75)

    def test_walk_length_and_start(self, chain):
        walk = chain.walk(10, np.random.default_rng(0))
        assert len(walk) == 10
        assert walk[0] == "a"
        assert set(walk) <= {"a", "b"}

    def test_walk_respects_structure(self, chain):
        # b can only go to a.
        walk = chain.walk(50, np.random.default_rng(1))
        for current, following in zip(walk, walk[1:]):
            if current == "b":
                assert following == "a"

    def test_walk_deterministic_per_seed(self, chain):
        a = chain.walk(30, np.random.default_rng(5))
        b = chain.walk(30, np.random.default_rng(5))
        assert a == b

    def test_walk_rejects_zero_length(self, chain):
        with pytest.raises(WorkflowError):
            chain.walk(0, np.random.default_rng(0))

    def test_step_unknown_state(self, chain):
        with pytest.raises(WorkflowError):
            chain.step("ghost", np.random.default_rng(0))

    def test_iter_walk_is_lazy_and_infinite(self, chain):
        walker = chain.iter_walk(np.random.default_rng(2))
        first_five = [next(walker) for _ in range(5)]
        assert first_five[0] == "a"

    def test_empirical_frequencies_match_transition_probs(self, chain):
        rng = np.random.default_rng(3)
        walk = chain.walk(20_000, rng)
        after_a = [nxt for cur, nxt in zip(walk, walk[1:]) if cur == "a"]
        frequency_b = sum(1 for s in after_a if s == "b") / len(after_a)
        assert frequency_b == pytest.approx(0.75, abs=0.02)


class TestStationaryDistribution:
    def test_sums_to_one(self, chain):
        distribution = chain.stationary_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_matches_analytic_solution(self, chain):
        # π_a = π_a * 0.25 + π_b;  π_b = π_a * 0.75  →  π_a = 4/7, π_b = 3/7
        distribution = chain.stationary_distribution()
        assert distribution["a"] == pytest.approx(4 / 7, abs=1e-6)
        assert distribution["b"] == pytest.approx(3 / 7, abs=1e-6)
