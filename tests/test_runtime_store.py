"""Tests for the content-addressed artifact store."""

import numpy as np
import pytest

from repro.runtime.store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestRoundTrip:
    def test_put_get(self, store):
        store.put(("table", 1), {"rows": np.arange(5)})
        loaded = store.get(("table", 1))
        np.testing.assert_array_equal(loaded["rows"], np.arange(5))
        assert store.hits == 1 and store.puts == 1

    def test_miss_returns_none(self, store):
        assert store.get(("nothing", "here")) is None
        assert store.misses == 1

    def test_contains(self, store):
        assert not store.contains("k")
        store.put("k", 42)
        assert store.contains("k")

    def test_keys_are_structural(self, store):
        store.put({"b": 1, "a": 2}, "artifact")
        assert store.get({"a": 2, "b": 1}) == "artifact"

    def test_persists_across_instances(self, store):
        store.put("shared", [1, 2, 3])
        reopened = ArtifactStore(store.root)
        assert reopened.get("shared") == [1, 2, 3]

    def test_get_or_create_builds_once(self, store):
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert store.get_or_create("key", build) == "value"
        assert store.get_or_create("key", build) == "value"
        assert len(calls) == 1
        assert store.hits == 1 and store.misses == 1


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_removed(self, store):
        store.put("key", "value")
        path = store.path_for("key")
        path.write_bytes(b"not a pickle")
        assert store.get("key") is None
        assert not path.exists()
        # Rebuild works after the corrupt entry was dropped.
        assert store.get_or_create("key", lambda: "fresh") == "fresh"
        assert store.get("key") == "fresh"

    def test_clear(self, store):
        store.put("a", 1)
        store.put("b", 2)
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0


class TestEviction:
    def test_lru_eviction_bounds_size(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        blob = b"x" * 10_000
        for index in range(5):
            store.put(("blob", index), blob)
        total = store.total_bytes()
        removed = store.evict(total // 2)
        assert removed >= 1
        assert store.total_bytes() <= total // 2
        assert store.evictions == removed

    def test_recently_used_survive(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "cache")
        # Deterministic recency without sleeping: fake mtimes via touch.
        import os

        for index in range(4):
            path = store.put(("blob", index), b"y" * 1000)
            os.utime(path, (index, index))
        os.utime(store.path_for(("blob", 0)), (100, 100))  # 0 is now hottest
        store.evict(2 * 1000 + 500)
        assert store.contains(("blob", 0))
        assert not store.contains(("blob", 1))

    def test_max_bytes_enforced_on_put(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", max_bytes=3_000)
        for index in range(10):
            store.put(("blob", index), b"z" * 1000)
        assert store.total_bytes() <= 3_000
        assert store.evictions > 0
