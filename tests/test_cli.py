"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import build_parser, main
from repro.data.storage import Table
from repro.workflow.spec import Workflow


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.engine == "idea-sim"
        assert args.tr == 3.0
        assert args.scale == 1000

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "oracle"])

    def test_no_kernels_flag_parses(self):
        args = build_parser().parse_args(["--no-kernels", "run"])
        assert args.no_kernels
        args = build_parser().parse_args(["run"])
        assert not args.no_kernels


class TestNoKernels:
    def test_no_kernels_run_matches_default(self, tmp_path):
        """--no-kernels answers bitwise-identically, just uncompiled."""
        from repro.engines.kernel_cache import kernels_enabled

        fast, slow = tmp_path / "fast.csv", tmp_path / "slow.csv"
        common = ["run", "--engine", "idea-sim", "--size", "S",
                  "--scale", "20000", "--per-type", "1", "--tr", "1"]
        assert main(common + ["--out", str(fast)]) == 0
        assert kernels_enabled()
        try:
            assert main(["--no-kernels"] + common + ["--out", str(slow)]) == 0
            assert not kernels_enabled()
        finally:
            from repro.engines.kernel_cache import set_kernels_enabled

            set_kernels_enabled(True)
        assert fast.read_bytes() == slow.read_bytes()


class TestGenerateData:
    def test_writes_csv(self, tmp_path):
        out = tmp_path / "flights.csv"
        code = main([
            "generate-data", "--rows", "500", "--out", str(out), "--seed", "3",
        ])
        assert code == 0
        table = Table.from_csv(out)
        assert table.num_rows == 500
        assert "DEP_DELAY" in table

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate-data", "--rows", "200", "--out", str(a), "--seed", "9"])
        main(["generate-data", "--rows", "200", "--out", str(b), "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestGenerateWorkflows:
    def test_writes_suite(self, tmp_path):
        out = tmp_path / "suite"
        code = main([
            "generate-workflows", "--out", str(out), "--per-type", "1",
            "--scale", "5000", "--size", "S", "--seed", "3",
        ])
        assert code == 0
        files = sorted(out.glob("*.json"))
        assert len(files) == 5  # one per type incl. mixed
        workflow = Workflow.from_json(files[0])
        assert workflow.num_interactions > 0


class TestView:
    def test_renders_workflow(self, tmp_path, capsys):
        out = tmp_path / "suite"
        main([
            "generate-workflows", "--out", str(out), "--per-type", "1",
            "--scale", "5000", "--size", "S", "--seed", "3",
        ])
        workflow_path = sorted(out.glob("*.json"))[0]
        code = main(["view", str(workflow_path)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "final dashboard" in captured

    def test_sql_flag(self, tmp_path, capsys):
        out = tmp_path / "suite"
        main([
            "generate-workflows", "--out", str(out), "--per-type", "1",
            "--scale", "5000", "--size", "S", "--seed", "3",
        ])
        workflow_path = sorted(out.glob("*.json"))[0]
        main(["view", str(workflow_path), "--sql"])
        assert "SELECT" in capsys.readouterr().out


class TestRunAndReport:
    def test_run_writes_detailed_report(self, tmp_path, capsys):
        out = tmp_path / "detail.csv"
        code = main([
            "run", "--engine", "idea-sim", "--tr", "1", "--scale", "5000",
            "--size", "S", "--per-type", "1", "--out", str(out), "--seed", "3",
        ])
        assert code == 0
        with open(out) as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        assert rows[0]["driver"] == "idea-sim"
        stdout = capsys.readouterr().out
        assert "data preparation" in stdout
        assert "%TR viol" in stdout

    def test_report_summarizes(self, tmp_path, capsys):
        out = tmp_path / "detail.csv"
        main([
            "run", "--engine", "idea-sim", "--tr", "1", "--scale", "5000",
            "--size", "S", "--per-type", "1", "--out", str(out), "--seed", "3",
        ])
        capsys.readouterr()
        code = main(["report", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "TR violated" in stdout
        assert "mean missing bins" in stdout

    def test_report_empty_file_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("id\n")
        assert main(["report", str(path)]) == 1

    def test_run_on_external_workflow_dir(self, tmp_path, capsys):
        suite = tmp_path / "suite"
        main([
            "generate-workflows", "--out", str(suite), "--per-type", "1",
            "--scale", "5000", "--size", "S", "--seed", "3",
        ])
        code = main([
            "run", "--engine", "monetdb-sim", "--tr", "1", "--scale", "5000",
            "--size", "S", "--workflows", str(suite), "--seed", "3",
        ])
        assert code == 0


class TestCacheSubcommand:
    """repro cache {stats,clear,evict} — the artifact-store GC wiring."""

    def _populate(self, tmp_path, entries=4):
        from repro.runtime import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        for index in range(entries):
            store.put(("cli-cache-test", index), {"payload": "x" * 200, "i": index})
        return store

    def test_stats_reports_entries_and_bytes(self, tmp_path, capsys):
        self._populate(tmp_path)
        code = main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")])
        captured = capsys.readouterr().out
        assert code == 0
        assert "entries: 4" in captured

    def test_clear_removes_everything(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        code = main(["cache", "clear", "--cache-dir", str(tmp_path / "cache")])
        captured = capsys.readouterr().out
        assert code == 0
        assert "removed 4 artifacts" in captured
        assert len(store) == 0

    def test_evict_shrinks_to_budget(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        per_entry = store.total_bytes() // 4
        code = main([
            "cache", "evict", "--cache-dir", str(tmp_path / "cache"),
            "--max-bytes", str(per_entry * 2),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "evicted 2 artifacts" in captured
        assert len(store) == 2
        assert store.total_bytes() <= per_entry * 2

    def test_evict_defaults_to_budget(self, tmp_path, capsys):
        self._populate(tmp_path)
        code = main(["cache", "evict", "--cache-dir", str(tmp_path / "cache")])
        captured = capsys.readouterr().out
        assert code == 0
        # Tiny store, nothing over the default 2 GiB budget.
        assert "evicted 0 artifacts" in captured

    def test_run_matrix_applies_cache_budget(self, tmp_path, capsys):
        cache = tmp_path / "budgeted"
        code = main([
            "run-matrix", "--engines", "monetdb-sim", "--trs", "1",
            "--sizes", "S", "--scale", "50000", "--seed", "5",
            "--per-type", "1", "--cache-dir", str(cache),
            "--cache-budget", "1", "--quiet",
        ])
        assert code == 0
        from repro.runtime import ArtifactStore

        # Budget of one byte: the store evicted everything it wrote.
        assert ArtifactStore(cache).total_bytes() <= 1
