"""Wire-protocol tests: fuzzed round trips, malformed frames, framing.

The protocol's load-bearing property is that encode→decode→encode is a
*fixpoint* — a message that crosses the wire and is re-encoded produces
the exact same bytes, which is what the golden transcript and the
byte-identical-report guarantee stand on. A seeded stdlib-random fuzzer
exercises it over the whole message catalog, including NaN-carrying
TR-violated records and generator-sampled interactions.
"""

import json
import math
import random
import struct

import pytest

from repro.bench.driver import QueryRecord
from repro.bench.metrics import QueryMetrics
from repro.common.errors import ProtocolError
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Attach,
    Barrier,
    Detach,
    ErrorMessage,
    Hello,
    Interact,
    Progress,
    Record,
    SubmitViz,
    TurnDone,
    TurnGrant,
    decode_body,
    decode_message,
    encode_body,
    encode_message,
    record_from_dict,
    record_to_dict,
    split_frame,
    version_error,
)
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
)

N_CASES = 200


# ----------------------------------------------------------------------
# Random builders (stdlib random, fixed seeds — failures reproduce)
# ----------------------------------------------------------------------

def _viz(rng: random.Random) -> VizSpec:
    bins = tuple(
        BinDimension(f"C_{rng.randint(0, 9)}", BinKind.NOMINAL)
        for _ in range(rng.randint(1, 2))
    )
    aggs = (Aggregate(AggFunc.COUNT),)
    if rng.random() < 0.5:
        aggs += (Aggregate(AggFunc.AVG, f"C_{rng.randint(0, 9)}"),)
    return VizSpec(
        name=f"viz_{rng.randint(0, 99)}",
        source="flights",
        bins=bins,
        aggregates=aggs,
    )


def _interaction(rng: random.Random):
    kind = rng.randrange(5)
    if kind == 0:
        return CreateViz(_viz(rng))
    if kind == 1:
        return SetFilter(f"viz_{rng.randint(0, 9)}", None)
    if kind == 2:
        return Link(f"viz_{rng.randint(0, 4)}", f"viz_{rng.randint(5, 9)}")
    if kind == 3:
        keys = tuple(
            (rng.randint(0, 20),) for _ in range(rng.randint(0, 3))
        )
        return SelectBins(f"viz_{rng.randint(0, 9)}", keys)
    return DiscardViz(f"viz_{rng.randint(0, 9)}")


def _metric_value(rng: random.Random) -> float:
    roll = rng.random()
    if roll < 0.15:
        return float("nan")
    if roll < 0.2:
        return float("inf")
    return rng.uniform(-10.0, 10.0)


def _record(rng: random.Random) -> QueryRecord:
    if rng.random() < 0.3:
        metrics = QueryMetrics.violated(rng.randint(0, 50))
    else:
        metrics = QueryMetrics(
            tr_violated=False,
            bins_delivered=rng.randint(0, 40),
            bins_in_gt=rng.randint(0, 40),
            missing_bins=rng.random(),
            rel_error_avg=_metric_value(rng),
            rel_error_stdev=_metric_value(rng),
            smape=_metric_value(rng),
            cosine_distance=_metric_value(rng),
            margin_avg=_metric_value(rng),
            margin_stdev=_metric_value(rng),
            bins_out_of_margin=rng.randint(0, 9),
            bias=_metric_value(rng),
        )
    return QueryRecord(
        query_id=rng.randint(0, 10_000),
        interaction_id=rng.randint(0, 30),
        viz_name=f"viz_{rng.randint(0, 9)}",
        driver="idea-sim",
        data_size=rng.choice(["S", "M", "L"]),
        think_time=rng.choice([0.5, 1.0, 3.0]),
        time_requirement=rng.choice([1.0, 3.0, 10.0]),
        workflow=f"mixed_{rng.randint(0, 9)}",
        workflow_type=rng.choice(["mixed", "sequential", "custom"]),
        start_time=rng.uniform(0, 100),
        end_time=rng.uniform(0, 100),
        metrics=metrics,
        bin_dims=rng.randint(1, 3),
        binning_type="nominal",
        agg_type="count",
        rows_processed=rng.randint(0, 1_000_000),
        fraction=rng.random(),
        num_concurrent=rng.randint(1, 8),
        qualifying_fraction=rng.random(),
    )


def _message(rng: random.Random):
    roll = rng.randrange(11)
    if roll == 0:
        return Hello(role=rng.choice(["client", "server"]),
                     engine=rng.choice([None, "idea-sim"]),
                     capabilities=rng.choice(
                         [(), ("shared-engine",), ("shared-engine", "x")]
                     ))
    if roll == 1:
        return Attach(
            mode=rng.choice(["scripted", "client"]),
            session_index=rng.randint(0, 31),
            per_session=rng.randint(1, 4),
            workflow_type=rng.choice(["mixed", "sequential"]),
            accel=rng.choice([None, 1.0, 1e6]),
        )
    if roll == 2:
        return SubmitViz(_viz(rng))
    if roll == 3:
        return Interact(_interaction(rng))
    if roll == 4:
        return Record(f"session-{rng.randint(0, 9)}", rng.randint(0, 99),
                      _record(rng))
    if roll == 5:
        return Progress(f"session-{rng.randint(0, 9)}",
                        rng.choice(["attached", "workflow"]),
                        {"index": rng.randint(0, 5)})
    if roll == 6:
        return Detach(
            session_id=rng.choice([None, "session-1"]),
            queries=rng.choice([None, rng.randint(0, 400)]),
            makespan=rng.choice([None, rng.uniform(0, 200)]),
        )
    if roll == 7:
        return Barrier(sessions=rng.randint(1, 32),
                       event=rng.choice(["start", "end"]))
    if roll == 8:
        return TurnGrant(f"session-{rng.randint(0, 9)}",
                         rng.randint(0, 4000),
                         rng.uniform(0, 500))
    if roll == 9:
        return TurnDone(turn=rng.randint(0, 4000),
                        session_id=rng.choice([None, "session-3"]))
    return ErrorMessage(code=rng.choice(["protocol", "session", "turn"]),
                        message="x" * rng.randint(0, 40),
                        data=rng.choice(
                            [None, {"supported_versions": [1, 2]}]
                        ))


# ----------------------------------------------------------------------
# Fuzz: encode → decode → encode fixpoint
# ----------------------------------------------------------------------

class TestRoundTripFuzz:
    def test_encode_decode_encode_fixpoint(self):
        rng = random.Random(1337)
        for case in range(N_CASES):
            message = _message(rng)
            body = encode_body(message)
            decoded = decode_body(body)
            again = encode_body(decoded)
            assert body == again, f"case {case}: {message!r} not a fixpoint"
            assert type(decoded) is type(message)

    def test_frame_roundtrip_through_split(self):
        rng = random.Random(7)
        stream = b""
        originals = []
        for _ in range(50):
            message = _message(rng)
            originals.append(encode_body(message))
            stream += encode_message(message)
        # Re-split the concatenated stream in awkward chunk sizes.
        bodies, buffer = [], b""
        for i in range(0, len(stream), 13):
            buffer += stream[i:i + 13]
            while True:
                split = split_frame(buffer)
                if split is None:
                    break
                body, buffer = split
                bodies.append(bytes(body))
        assert buffer == b""
        assert bodies == originals

    def test_record_dict_roundtrip_preserves_nan_exactly(self):
        rng = random.Random(99)
        for _ in range(N_CASES):
            record = _record(rng)
            data = json.loads(
                json.dumps(record_to_dict(record), allow_nan=True)
            )
            rebuilt = record_from_dict(data)
            for field in ("start_time", "end_time", "fraction"):
                assert getattr(rebuilt, field) == getattr(record, field)
            for name in ("rel_error_avg", "margin_avg", "bias"):
                a = getattr(rebuilt.metrics, name)
                b = getattr(record.metrics, name)
                assert (a == b) or (math.isnan(a) and math.isnan(b))
            assert rebuilt.metrics.tr_violated == record.metrics.tr_violated


# ----------------------------------------------------------------------
# Malformed frames
# ----------------------------------------------------------------------

class TestMalformed:
    def test_oversized_length_prefix_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            split_frame(header + b"x" * 16)

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_body(b"{nope")

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_body(b"[1,2,3]")

    def test_unknown_type_rejected(self):
        body = json.dumps({"v": PROTOCOL_VERSION, "type": "teleport"})
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_body(body.encode())

    def test_version_mismatch_rejected_for_session_frames(self):
        body = json.dumps({"v": PROTOCOL_VERSION + 1, "type": "attach"})
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_body(body.encode())

    def test_missing_version_rejected_for_session_frames(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_message({"type": "attach"})

    def test_hello_decodes_across_versions(self):
        # The handshake must survive a version mismatch so it can be
        # answered with a *typed* error, not a decode failure.
        body = json.dumps({
            "v": PROTOCOL_VERSION + 7, "type": "hello", "role": "client",
        })
        hello = decode_body(body.encode())
        assert isinstance(hello, Hello)
        assert hello.version == PROTOCOL_VERSION + 7  # falls back to "v"

    def test_error_decodes_across_versions(self):
        body = json.dumps({
            "v": 1, "type": "error", "code": "version",
            "message": "nope", "data": {"supported_versions": [1]},
        })
        error = decode_body(body.encode())
        assert isinstance(error, ErrorMessage)
        assert error.data == {"supported_versions": [1]}

    def test_version_error_frame_names_supported_versions(self):
        frame = version_error(1)
        assert frame.code == "version"
        assert frame.data == {
            "supported_versions": list(SUPPORTED_VERSIONS)
        }
        assert "1" in frame.message
        # ... and it survives its own round trip.
        assert decode_body(encode_body(frame)) == frame

    def test_malformed_record_payload_rejected(self):
        with pytest.raises(ProtocolError, match="malformed record"):
            record_from_dict({"metrics": {}})

    def test_malformed_interaction_rejected(self):
        body = json.dumps(
            {"v": PROTOCOL_VERSION, "type": "interact", "interaction": {}}
        )
        with pytest.raises(ProtocolError):
            decode_body(body.encode())

    def test_attach_validates_mode(self):
        with pytest.raises(ProtocolError, match="unknown attach mode"):
            Attach(mode="sideways")

    def test_client_mode_rejects_policy(self):
        with pytest.raises(ProtocolError, match="interaction source"):
            Attach(mode="client", policy="markov")

    def test_truncated_stream_is_incomplete_not_error(self):
        frame = encode_message(Hello())
        assert split_frame(frame[: len(frame) // 2]) is None
        assert split_frame(b"") is None


class TestCatalog:
    def test_catalog_covers_the_issue_vocabulary(self):
        assert set(MESSAGE_TYPES) == {
            "hello", "attach", "submit_viz", "interact",
            "record", "progress", "barrier", "turn_grant", "turn_done",
            "detach", "stats_request", "stats", "error",
            "stats_subscribe", "stats_push", "stats_unsubscribe",
        }

    def test_canonical_encoding_is_stable(self):
        message = Progress("s", "attached", {"b": 1, "a": 2})
        assert encode_body(message) == encode_body(message)
        # sorted keys: "a" before "b" regardless of insertion order
        assert encode_body(message).index(b'"a"') < encode_body(message).index(b'"b"')
