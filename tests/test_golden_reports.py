"""Golden-report determinism harness.

Every scenario in ``tools/regen_golden.py``'s corpus — serial run,
shared-engine server run, adaptive (markov) run, open-system churn run —
is re-executed in-process and compared **byte for byte** against the
checked-in file under ``tests/golden/``. Any engine/driver/server/policy
change that shifts output fails here with a diff, before it can silently
alter published results.

Intentional changes are a one-command refresh::

    PYTHONPATH=src python tools/regen_golden.py

The builders run on the session-scoped ``server_ctx`` fixture (same
settings the regenerator uses), so this module adds no extra dataset
construction to the suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_golden", REPO_ROOT / "tools" / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regen_golden", module)
    spec.loader.exec_module(module)
    return module


regen = _load_regen()


def test_corpus_and_builders_agree():
    """Every checked-in file has a builder and vice versa."""
    on_disk = {path.name for path in GOLDEN_DIR.iterdir() if path.is_file()}
    assert on_disk == set(regen.GOLDEN_CASES)


def test_regen_settings_match_test_settings(server_ctx):
    """The regenerator must run the exact configuration the tests run."""
    assert regen.build_context().settings == server_ctx.settings


@pytest.mark.parametrize("name", sorted(regen.GOLDEN_CASES))
def test_replay_is_byte_identical(server_ctx, name):
    golden = (GOLDEN_DIR / name).read_bytes()
    rebuilt = regen.GOLDEN_CASES[name](server_ctx).encode("utf-8")
    assert rebuilt == golden, (
        f"{name} drifted from the golden corpus; if the change is "
        f"intentional, refresh with: PYTHONPATH=src python "
        f"tools/regen_golden.py"
    )


def test_adaptive_differs_from_scripted():
    """Sanity: the adaptive golden file is not a copy of the scripted one."""
    markov = (GOLDEN_DIR / "adaptive_markov.txt").read_bytes()
    shared = (GOLDEN_DIR / "server_shared.txt").read_bytes()
    assert markov != shared


def test_churn_corpus_records_departures():
    churn = (GOLDEN_DIR / "open_churn.txt").read_bytes()
    assert b"departed_at=" in churn
