"""Marker-driven rule tests over the fixture corpus.

Every file in ``tests/lint_fixtures/`` annotates its expected findings
inline (``# LINT: DET001`` on the offending line, ``# LINT-NEXT: ...``
for the line below — see the corpus README). Each fixture is linted
under a policy enabling *only* its rule, and the multiset of
``(line, rule)`` findings must match the markers exactly: known-bad
files flag every marked line and nothing else; known-good files flag
nothing.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.engine import run_lint
from repro.analysis.policy import Policy

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: (fixture filename, the single rule its policy enables)
CASES = [
    ("det001_bad.py", "DET001"),
    ("det001_good.py", "DET001"),
    ("det002_bad.py", "DET002"),
    ("det002_good.py", "DET002"),
    ("det003_bad.py", "DET003"),
    ("det003_good.py", "DET003"),
    ("det004_bad.py", "DET004"),
    ("det004_good.py", "DET004"),
    ("det005_bad.py", "DET005"),
    ("det005_good.py", "DET005"),
    ("det006_bad.py", "DET006"),
    ("det006_good.py", "DET006"),
    ("pragmas_bad.py", "DET001"),
    ("pragmas_good.py", "DET001"),
    ("regress_pr1_setpredicate.py", "DET005"),
]

_MARKER = re.compile(r"# LINT: ([A-Z0-9,]+)")
_MARKER_NEXT = re.compile(r"# LINT-NEXT: ([A-Z0-9,]+)")


def expected_findings(path: Path):
    expected = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        match = _MARKER.search(line)
        if match:
            expected.extend((lineno, rule) for rule in match.group(1).split(","))
        match = _MARKER_NEXT.search(line)
        if match:
            expected.extend(
                (lineno + 1, rule) for rule in match.group(1).split(",")
            )
    return sorted(expected)


def test_corpus_is_complete():
    """Every fixture on disk is covered by a case (and vice versa)."""
    on_disk = {p.name for p in FIXTURES.glob("*.py")}
    in_cases = {name for name, _rule in CASES}
    assert on_disk == in_cases


def test_every_rule_has_bad_and_good_fixtures():
    """Acceptance criterion: >=1 failing bad + >=1 passing good per rule."""
    for i in range(1, 7):
        rule = f"DET00{i}"
        bad = FIXTURES / f"det00{i}_bad.py"
        good = FIXTURES / f"det00{i}_good.py"
        assert expected_findings(bad), f"{rule} bad fixture marks no findings"
        assert not expected_findings(good)


@pytest.mark.parametrize("name,rule", CASES, ids=[c[0] for c in CASES])
def test_fixture_matches_markers(name, rule):
    path = FIXTURES / name
    result = run_lint([path], policy=Policy(base=(rule,), tiers=()))
    assert not result.parse_errors
    got = sorted((f.line, f.rule) for f in result.findings)
    assert got == expected_findings(path)


def test_regression_pr1_set_repr_seed_is_caught():
    """The historical PR-1 bug shape — frozenset repr flowing into
    engine-rotation seed derivation — must be a DET005 finding."""
    path = FIXTURES / "regress_pr1_setpredicate.py"
    result = run_lint([path], policy=Policy(base=("DET005",), tiers=()))
    rules = {f.rule for f in result.findings}
    assert rules == {"DET005"}
    (finding,) = result.findings
    assert "derive_seed" in finding.snippet
