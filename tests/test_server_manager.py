"""Tests for the asyncio session server (docs/server.md guarantees).

The acceptance properties:

* **serial equivalence** — per-session reports from isolated serving are
  byte-identical to the same workflows run through the serial driver
  (``repro run`` path), at 1 and at N sessions;
* **determinism under contention** — shared-engine serving is a pure
  function of its configuration;
* **pacing invariance** — accelerated wall-clock pacing never changes
  the bytes;
* sessions genuinely interleave (the global step trace switches between
  sessions).
"""

import io

import pytest

from repro.bench.experiments import make_engine
from repro.bench.report import DetailedReport
from repro.common.clock import VirtualClock
from repro.common.errors import BenchmarkError
from repro.common.rng import derive_session_seed
from repro.engines.scheduler import FairSessionPolicy
from repro.server import (
    SessionManager,
    SessionSpec,
    serial_baseline,
    session_specs,
)
from repro.workflow.spec import WorkflowType

# The shared ExperimentContext (S, scale=50 000, seed=5, TR=1 s) comes
# from the session-scoped ``server_ctx`` fixture in conftest.py.


def _csv(records):
    buffer = io.StringIO()
    DetailedReport(records).to_csv(buffer)
    return buffer.getvalue()


class TestSessionSpecs:
    def test_deterministic_and_independent_of_count(self, server_ctx):
        three = session_specs(server_ctx, 3, per_session=1)
        five = session_specs(server_ctx, 5, per_session=1)
        for a, b in zip(three, five):
            assert a.session_id == b.session_id
            assert a.seed == b.seed
            assert [w.to_dict() for w in a.workflows] == [
                w.to_dict() for w in b.workflows
            ]

    def test_seeds_follow_purpose_string(self, server_ctx):
        specs = session_specs(server_ctx, 2, per_session=1)
        for index, spec in enumerate(specs):
            assert spec.seed == derive_session_seed(
                server_ctx.settings.seed, index
            )
        assert specs[0].seed != specs[1].seed

    def test_spec_validation(self):
        with pytest.raises(BenchmarkError):
            SessionSpec(session_id="", workflows=())


class TestSerialEquivalence:
    @pytest.mark.parametrize("num_sessions", [1, 4])
    def test_isolated_sessions_match_serial_runs(self, server_ctx, num_sessions):
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", num_sessions, per_session=2
        )
        results = manager.run()
        baseline = serial_baseline(server_ctx, "idea-sim", manager.specs)
        assert len(results) == num_sessions
        for result, reference in zip(results, baseline):
            assert result.csv_text() == reference.csv_text()

    def test_frontend_engine_serves(self, server_ctx):
        """system-y-sim (a delegating non-Engine) works in both modes."""
        isolated = SessionManager.for_engine(
            server_ctx, "system-y-sim", 2, per_session=1
        )
        results = isolated.run()
        baseline = serial_baseline(server_ctx, "system-y-sim", isolated.specs)
        for result, reference in zip(results, baseline):
            assert result.csv_text() == reference.csv_text()
        shared = SessionManager.for_engine(
            server_ctx, "system-y-sim", 2, per_session=1, share_engine=True
        )
        assert sum(r.num_queries for r in shared.run()) > 0

    def test_shared_engine_group_reset_after_run(self, server_ctx):
        manager = SessionManager.for_engine(
            server_ctx, "monetdb-sim", 2, per_session=1, share_engine=True
        )
        manager.run()
        scheduler = manager._shared_engine.scheduler
        assert scheduler._current_group is None

    def test_matches_repro_run_suite(self, server_ctx):
        """The exact `repro run` workflows through a 1-session server."""
        settings = server_ctx.settings
        workflows = server_ctx.workflows(WorkflowType.MIXED, 2)
        spec = SessionSpec("session-0", tuple(workflows), seed=settings.seed)
        engine = make_engine(
            "monetdb-sim", server_ctx.dataset(settings.data_size), settings,
            VirtualClock(),
        )
        manager = SessionManager(
            [spec],
            server_ctx.oracle(settings.data_size),
            settings,
            engines=[engine],
        )
        (result,) = manager.run()
        # The `repro run` path: ExperimentContext.run on a fresh engine.
        serial_records = server_ctx.run("monetdb-sim", workflows)
        assert result.csv_text() == _csv(serial_records)


class TestSharedEngine:
    def test_deterministic_across_runs(self, server_ctx):
        def serve():
            manager = SessionManager.for_engine(
                server_ctx, "idea-sim", 4, per_session=1, share_engine=True
            )
            return manager, manager.run()

        manager_a, results_a = serve()
        _, results_b = serve()
        for a, b in zip(results_a, results_b):
            assert a.csv_text() == b.csv_text()
        assert isinstance(
            manager_a._shared_engine.scheduler.policy, FairSessionPolicy
        )

    def test_contention_differs_from_isolated(self, server_ctx):
        shared = SessionManager.for_engine(
            server_ctx, "monetdb-sim", 4, per_session=1, share_engine=True
        ).run()
        isolated = SessionManager.for_engine(
            server_ctx, "monetdb-sim", 4, per_session=1
        ).run()
        assert any(
            a.csv_text() != b.csv_text() for a, b in zip(shared, isolated)
        )

    def test_scheduler_tasks_grouped_by_session(self, server_ctx):
        manager = SessionManager.for_engine(
            server_ctx, "monetdb-sim", 3, per_session=1, share_engine=True
        )
        manager.run()
        engine = manager._shared_engine
        groups = {
            engine.scheduler.task_group(state.task_id)
            for state in engine._handles.values()
        }
        assert groups == {"session-0", "session-1", "session-2"}


class TestPacingAndStreams:
    def test_accelerated_pacing_is_byte_identical(self, server_ctx):
        paced = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, accel=1_000_000.0
        ).run()
        unpaced = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1
        ).run()
        for a, b in zip(paced, unpaced):
            assert a.csv_text() == b.csv_text()

    def test_trace_interleaves_sessions(self, server_ctx):
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 3, per_session=1, trace_capture=True
        )
        manager.run()
        switches = sum(
            1 for a, b in zip(manager.trace, manager.trace[1:]) if a[1] != b[1]
        )
        assert switches >= 3
        times = [t for t, _ in manager.trace]
        assert times == sorted(times)

    def test_streams_receive_every_record_in_order(self, server_ctx):
        seen = []
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1,
            on_record=lambda session_id, record: seen.append(
                (session_id, record.query_id)
            ),
        )
        results = manager.run()
        assert len(seen) == sum(result.num_queries for result in results)
        for result in results:
            mine = [q for s, q in seen if s == result.session_id]
            assert mine == [r.query_id for r in result.records]


class TestValidation:
    def test_single_shot(self, server_ctx):
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 1, per_session=1
        )
        manager.run()
        with pytest.raises(BenchmarkError):
            manager.run()

    def test_engine_topology_is_exclusive(self, server_ctx):
        specs = session_specs(server_ctx, 1, per_session=1)
        oracle = server_ctx.oracle(server_ctx.settings.data_size)
        with pytest.raises(BenchmarkError):
            SessionManager(specs, oracle, server_ctx.settings)

    def test_engine_count_must_match(self, server_ctx):
        specs = session_specs(server_ctx, 2, per_session=1)
        settings = server_ctx.settings
        oracle = server_ctx.oracle(settings.data_size)
        engine = make_engine(
            "idea-sim", server_ctx.dataset(settings.data_size), settings,
            VirtualClock(),
        )
        with pytest.raises(BenchmarkError):
            SessionManager(specs, oracle, settings, engines=[engine])

    def test_duplicate_session_ids_rejected(self, server_ctx):
        spec = session_specs(server_ctx, 1, per_session=1)[0]
        settings = server_ctx.settings
        oracle = server_ctx.oracle(settings.data_size)
        engines = [
            make_engine(
                "idea-sim", server_ctx.dataset(settings.data_size), settings,
                VirtualClock(),
            )
            for _ in range(2)
        ]
        with pytest.raises(BenchmarkError):
            SessionManager([spec, spec], oracle, settings, engines=engines)
