"""CLI tests for the network front-end and regression-tracking commands.

Covers ``repro serve --tcp`` + ``repro connect`` (scripted fetch, wire
replay, REPL), ``repro bench-net``, ``repro serve --arrival-schedule``,
and ``repro report snapshot``/``diff``. Loopback servers run on a
background thread via :class:`~repro.net.server.ServerThread`.
"""

import pytest

from repro.cli import main
from repro.net.server import ServerThread, TcpSessionServer

#: Small-but-honest configuration matching the server test fixtures.
COMMON = ["--size", "S", "--scale", "50000", "--seed", "5", "--tr", "1"]


@pytest.fixture()
def tcp_server(server_ctx):
    """A loopback TCP server on an ephemeral port; yields HOST:PORT."""
    server = TcpSessionServer(server_ctx, "idea-sim")
    with ServerThread(server) as (host, port):
        yield f"{host}:{port}"


class TestServeTcp:
    def test_serves_n_sessions_then_exits(self, server_ctx, capsys):
        # Drive `repro serve --tcp` itself in a thread; connect from here.
        import re
        import threading

        from repro.net.client import scripted_csv_over_tcp

        ready = threading.Event()
        captured = {}

        def run_cli():
            import contextlib
            import io

            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                captured["code"] = main(
                    ["serve", "--tcp", "127.0.0.1:0", "--sessions", "1",
                     "--engine", "idea-sim"] + COMMON
                )
            captured["out"] = out.getvalue()

        # Patch on_ready through the printed line: poll stdout text via
        # a wrapper is fragile — instead run and parse the port from the
        # "listening on" line written before serving starts.
        import repro.net.server as net_server

        original_init = net_server.TcpSessionServer.__init__

        def patched_init(self, *args, **kwargs):
            inner = kwargs.get("on_ready")

            def on_ready(host, port):
                captured["port"] = port
                if inner:
                    inner(host, port)
                ready.set()

            kwargs["on_ready"] = on_ready
            original_init(self, *args, **kwargs)

        net_server.TcpSessionServer.__init__ = patched_init
        try:
            thread = threading.Thread(target=run_cli, daemon=True)
            thread.start()
            assert ready.wait(30), "serve --tcp never started listening"
            _, csv_text = scripted_csv_over_tcp(
                "127.0.0.1", captured["port"], 0, per_session=1
            )
            thread.join(30)
        finally:
            net_server.TcpSessionServer.__init__ = original_init
        assert captured["code"] == 0
        assert "served 1 TCP sessions" in captured["out"]
        assert re.search(r"listening on 127\.0\.0\.1:\d+", captured["out"])
        assert csv_text.startswith("id,interaction")

    @pytest.mark.parametrize(
        "flag", [["--verify"], ["--follow"],
                 ["--arrivals", "0.2"], ["--policy", "markov"],
                 ["--accel", "2"], ["--per-session", "3"],
                 ["--arrival-schedule", "diurnal"], ["--horizon", "10"]]
    )
    def test_incompatible_flags_rejected(self, capsys, flag):
        code = main(
            ["serve", "--tcp", "127.0.0.1:0", "--sessions", "1"]
            + flag + COMMON
        )
        assert code == 1
        assert "cannot combine with --tcp" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag", [["--verify"], ["--follow"], ["--accel", "2"],
                 ["--arrivals", "0.2"], ["--out", "x"]]
    )
    def test_shared_mode_still_rejects_run_level_flags(self, capsys, flag):
        # --share-engine unblocks the workload flags (--per-session,
        # --workflow-type, --policy) but the run-level ones stay blocked.
        code = main(
            ["serve", "--tcp", "127.0.0.1:0", "--sessions", "2",
             "--share-engine"] + flag + COMMON
        )
        assert code == 1
        assert "cannot combine with --tcp" in capsys.readouterr().err

    def test_shared_mode_serves_one_run_then_exits(self, server_ctx):
        # End-to-end `repro serve --tcp --share-engine`: two concurrent
        # clients claim the two slots, the run completes, the server
        # exits, and both reports match in-process serve --share-engine.
        import contextlib
        import io
        import threading

        from repro.net.client import fetch_scripted_session, records_csv_text
        from repro.server import SessionManager

        ready = threading.Event()
        captured = {}

        import repro.net.server as net_server

        original_init = net_server.TcpSessionServer.__init__

        def patched_init(self, *args, **kwargs):
            inner = kwargs.get("on_ready")

            def on_ready(host, port):
                captured["port"] = port
                if inner:
                    inner(host, port)
                ready.set()

            kwargs["on_ready"] = on_ready
            original_init(self, *args, **kwargs)

        def run_cli():
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                captured["code"] = main(
                    ["serve", "--tcp", "127.0.0.1:0", "--sessions", "2",
                     "--share-engine", "--per-session", "1",
                     "--engine", "idea-sim"] + COMMON
                )
            captured["out"] = out.getvalue()

        net_server.TcpSessionServer.__init__ = patched_init
        results = {}
        try:
            cli_thread = threading.Thread(target=run_cli, daemon=True)
            cli_thread.start()
            assert ready.wait(30), "serve --tcp --share-engine never listened"

            def fetch(index):
                _, records, _ = fetch_scripted_session(
                    "127.0.0.1", captured["port"], index, per_session=1
                )
                results[index] = records_csv_text(records)

            clients = [
                threading.Thread(target=fetch, args=(i,), daemon=True)
                for i in range(2)
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join(60)
            cli_thread.join(60)
        finally:
            net_server.TcpSessionServer.__init__ = original_init
        assert captured["code"] == 0
        assert "served 2 TCP sessions" in captured["out"]
        assert "ONE shared-engine run of 2 sessions" in captured["out"]
        reference = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, share_engine=True
        ).run()
        for index, expected in enumerate(reference):
            assert results[index] == expected.csv_text()

    def test_shared_mode_requires_fixed_session_count(self, capsys):
        code = main(
            ["serve", "--tcp", "127.0.0.1:0", "--sessions", "0",
             "--share-engine"] + COMMON
        )
        assert code == 1
        assert "--sessions" in capsys.readouterr().err

    def test_malformed_address_rejected(self, capsys):
        code = main(["serve", "--tcp", "nonsense"] + COMMON)
        assert code == 1
        assert "HOST:PORT" in capsys.readouterr().err


class TestConnect:
    def test_scripted_fetch_writes_byte_identical_csv(
        self, tcp_server, server_ctx, tmp_path, capsys
    ):
        from repro.server import SessionManager

        out = tmp_path / "session.csv"
        code = main(
            ["connect", tcp_server, "--session", "0", "--per-session", "1",
             "--out", str(out)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "fetched session 'session-0'" in captured
        reference = SessionManager.for_engine(
            server_ctx, "idea-sim", 1, per_session=1
        ).run()
        assert out.read_bytes() == reference[0].csv_text().encode("utf-8")

    def test_replay_over_wire(self, tcp_server, server_ctx, tmp_path, capsys):
        from repro.server import session_specs

        spec = session_specs(server_ctx, 1, per_session=1)[0]
        path = tmp_path / "wf.json"
        spec.workflows[0].to_json(path)
        code = main(["connect", tcp_server, "--replay", str(path)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "replayed" in captured
        assert "queries" in captured

    def test_connection_refused_reported(self, capsys):
        code = main(["connect", "127.0.0.1:9", "--session", "0"])
        assert code == 1
        assert "connect failed" in capsys.readouterr().err

    def test_malformed_address_rejected(self, capsys):
        code = main(["connect", "nonsense"])
        assert code == 1
        assert "HOST:PORT" in capsys.readouterr().err


class TestRepl:
    def test_scripted_stdin_session(
        self, tcp_server, server_ctx, tmp_path, monkeypatch, capsys
    ):
        from repro.server import session_specs

        spec = session_specs(server_ctx, 1, per_session=1)[0]
        path = tmp_path / "wf.json"
        spec.workflows[0].to_json(path)
        lines = iter([
            "help",
            "status",
            "bogus",
            f"load {path}",
            "send 2",
            "records",
            "all",
            "detach",
        ])
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": next(lines)
        )
        code = main(["connect", tcp_server, "--repl"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "connected to idebench-repro" in captured
        assert "queued" in captured
        assert "unknown command 'bogus'" in captured
        assert "done:" in captured

    def test_eof_detaches_cleanly(self, tcp_server, server_ctx, monkeypatch,
                                  capsys):
        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        # Detaching with nothing sent is a legitimate no-op session: the
        # server answers with an empty summary.
        code = main(["connect", tcp_server, "--repl"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "0 queries" in captured

    def test_ctrl_c_sends_clean_detach(self, tcp_server, server_ctx,
                                       monkeypatch, capsys):
        # Regression: Ctrl-C used to tear the socket down without a
        # DETACH, so the server logged the session as a mid-run
        # disconnect/abandonment. An interactive quit must produce a
        # normal zero-or-partial summary — proven by the server's
        # DETACH answer ("done:") making it back before exit.
        lines = iter(["status"])

        def fake_input(prompt=""):
            try:
                return next(lines)
            except StopIteration:
                raise KeyboardInterrupt

        monkeypatch.setattr("builtins.input", fake_input)
        code = main(["connect", tcp_server, "--repl"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "interrupted — detaching" in captured
        assert "done:" in captured
        assert "0 queries" in captured

    def test_ctrl_c_detaches_after_partial_session(
        self, tcp_server, server_ctx, tmp_path, monkeypatch, capsys
    ):
        # Ctrl-C mid-session: the interactions already sent still drain
        # (deadline tail) and the summary reports the partial queries.
        from repro.server import session_specs

        spec = session_specs(server_ctx, 1, per_session=1)[0]
        path = tmp_path / "wf.json"
        spec.workflows[0].to_json(path)
        lines = iter([f"load {path}", "send 2"])

        def fake_input(prompt=""):
            try:
                return next(lines)
            except StopIteration:
                raise KeyboardInterrupt

        monkeypatch.setattr("builtins.input", fake_input)
        code = main(["connect", tcp_server, "--repl"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "interrupted — detaching" in captured
        assert "done:" in captured
        assert "0 queries" not in captured  # the sent prefix ran


class TestBenchNet:
    def test_loopback_equivalence_passes(self, capsys):
        code = main(
            ["bench-net", "--sessions", "2", "--per-session", "1"] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        # Isolated: 2 scripted sessions + wire replay + markov repeat +
        # markov vs in-process (5 checks). Shared: 2 scripted sessions +
        # the wire-replay pass (3 checks). All byte-identity PASS lines.
        assert captured.count("byte-identical") == 8
        assert captured.count("shared-TCP") == 2
        assert "FAIL" not in captured
        assert "PASS" in captured
        assert "overhead per query" in captured

    def test_remote_mode_aggregates_deterministically(
        self, capsys, tmp_path
    ):
        out = tmp_path / "contention.txt"
        code = main(
            ["bench-net", "--remote", "--sessions", "3",
             "--per-session", "1", "--out", str(out)] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "3 `repro connect` client processes" in captured
        assert "byte-identical across 2 repeated runs" in captured
        assert "byte-identical to the in-process" in captured
        report = out.read_bytes().decode("utf-8")
        assert report.startswith("== session-0 ==\n")
        assert "== session-2 ==" in report

    def test_remote_mode_rejects_malformed_host(self, capsys):
        code = main(
            ["bench-net", "--remote", "--host", "nonsense"] + COMMON
        )
        assert code == 1
        assert "HOST:PORT" in capsys.readouterr().err


class TestArrivalSchedule:
    def test_flash_crowd_serve(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "4",
             "--arrivals", "0.2", "--horizon", "40",
             "--arrival-schedule", "flash:peak=6x,at=10,width=10"]
            + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "flash" in captured and "schedule" in captured

    def test_schedule_without_arrivals_rejected(self, capsys):
        code = main(
            ["serve", "--sessions", "2",
             "--arrival-schedule", "diurnal"] + COMMON
        )
        assert code == 1
        assert "need --arrivals" in capsys.readouterr().err

    def test_malformed_schedule_rejected(self, capsys):
        code = main(
            ["serve", "--sessions", "2", "--arrivals", "0.2",
             "--arrival-schedule", "sideways"] + COMMON
        )
        assert code == 1
        assert "unknown arrival schedule" in capsys.readouterr().err


class TestReportSnapshotDiff:
    def _write(self, path, text):
        path.write_text(text, encoding="utf-8")
        return path

    def test_snapshot_and_identical_diff(self, tmp_path, capsys):
        csv = self._write(tmp_path / "m.csv", "a,b\n1,2\n")
        regress = tmp_path / "regress"
        for rev in ("aaa1111", "bbb2222"):
            code = main(
                ["report", "snapshot", str(csv), "--kind", "matrix",
                 "--rev", rev, "--dir", str(regress)]
            )
            assert code == 0
        code = main(
            ["report", "diff", "aaa1111", "bbb2222", "--dir", str(regress)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "identical" in captured

    def test_differing_revisions_exit_nonzero_with_diff(
        self, tmp_path, capsys
    ):
        regress = tmp_path / "regress"
        csv_a = self._write(tmp_path / "a.csv", "a,b\n1,2\n")
        csv_b = self._write(tmp_path / "b.csv", "a,b\n1,3\n")
        assert main(["report", "snapshot", str(csv_a), "--rev", "aaa",
                     "--dir", str(regress)]) == 0
        assert main(["report", "snapshot", str(csv_b), "--rev", "bbb",
                     "--dir", str(regress)]) == 0
        code = main(["report", "diff", "aaa", "bbb", "--dir", str(regress)])
        captured = capsys.readouterr().out
        assert code == 1
        assert "DIFFERS" in captured
        assert "-1,2" in captured and "+1,3" in captured
        assert "real behavior change" in captured

    def test_unknown_revision_reported(self, tmp_path, capsys):
        code = main(
            ["report", "diff", "nope", "nada", "--dir", str(tmp_path)]
        )
        assert code == 1
        assert "no snapshots" in capsys.readouterr().err

    def test_default_revision_comes_from_git(self, tmp_path, capsys):
        csv = self._write(tmp_path / "m.csv", "a\n1\n")
        regress = tmp_path / "regress"
        code = main(
            ["report", "snapshot", str(csv), "--dir", str(regress)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "revision" in captured
        stored = list(regress.iterdir())
        assert len(stored) == 1  # one revision directory was created

    def test_usage_errors(self, tmp_path, capsys):
        assert main(["report", "snapshot", "--dir", str(tmp_path)]) == 1
        assert "usage" in capsys.readouterr().err
        assert main(["report", "diff", "only-one", "--dir", str(tmp_path)]) == 1
        assert "usage" in capsys.readouterr().err

    def test_summary_mode_rejects_surplus_arguments(self, tmp_path, capsys):
        # (The original `repro report detailed.csv` path is covered by
        # test_cli.py; here just check extra args are caught.)
        csv = self._write(tmp_path / "d.csv", "x\n")
        assert main(["report", str(csv), "surplus"]) == 1
        assert "unexpected arguments" in capsys.readouterr().err
