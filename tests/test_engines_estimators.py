"""Tests for sampling estimators and confidence intervals.

Includes a statistical coverage check: across many random samples, the
fraction of true values inside the reported 95 % interval must be near
95 % — the property the Out-of-Margin metric (§4.7) sanity-checks.
"""

import numpy as np
import pytest

from repro.common.errors import EngineError
from repro.data.storage import Dataset, Table
from repro.engines.estimators import (
    StratumStats,
    srs_estimate,
    stratified_estimate,
    z_value,
)
from repro.query.groundtruth import compute_grouped_stats, evaluate_exact
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind


@pytest.fixture(scope="module")
def population(rng):
    n = 20_000
    groups = rng.choice(["a", "b", "c"], size=n, p=[0.6, 0.3, 0.1])
    values = rng.normal(50, 10, size=n) + (groups == "b") * 30
    table = Table("p", {"g": groups, "v": values})
    return Dataset.from_table(table)


@pytest.fixture(scope="module")
def count_sum_avg_query():
    return AggQuery(
        "p",
        bins=(BinDimension("g", BinKind.NOMINAL),),
        aggregates=(
            Aggregate(AggFunc.COUNT),
            Aggregate(AggFunc.SUM, "v"),
            Aggregate(AggFunc.AVG, "v"),
        ),
    )


class TestZValue:
    def test_95_percent(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-4)

    def test_99_percent(self):
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-4)

    def test_monotone(self):
        assert z_value(0.99) > z_value(0.9) > z_value(0.5)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(EngineError):
            z_value(bad)


class TestSrsEstimate:
    def test_full_sample_is_exact_with_zero_margins(
        self, population, count_sum_avg_query
    ):
        n = population.num_fact_rows
        stats = compute_grouped_stats(
            population, count_sum_avg_query, np.arange(n)
        )
        values, margins = srs_estimate(stats, n, n, 0.95)
        exact = evaluate_exact(population, count_sum_avg_query)
        for key, exact_row in exact.values.items():
            assert values[key] == pytest.approx(exact_row, rel=1e-9)
            count_margin, sum_margin, avg_margin = margins[key]
            assert count_margin == pytest.approx(0.0, abs=1e-9)
            assert sum_margin == pytest.approx(0.0, abs=1e-9)
            assert avg_margin == pytest.approx(0.0, abs=1e-9)

    def test_estimates_are_unbiased_ish(self, population, count_sum_avg_query, rng):
        exact = evaluate_exact(population, count_sum_avg_query)
        n = 2_000
        sums = {key: np.zeros(3) for key in exact.values}
        repeats = 30
        for _ in range(repeats):
            sample = rng.choice(population.num_fact_rows, size=n, replace=False)
            stats = compute_grouped_stats(population, count_sum_avg_query, sample)
            values, _ = srs_estimate(stats, n, population.num_fact_rows, 0.95)
            for key, row in values.items():
                sums[key] += np.array(row)
        for key, exact_row in exact.values.items():
            mean_estimate = sums[key] / repeats
            assert mean_estimate[0] == pytest.approx(exact_row[0], rel=0.05)
            assert mean_estimate[1] == pytest.approx(exact_row[1], rel=0.05)
            assert mean_estimate[2] == pytest.approx(exact_row[2], rel=0.02)

    def test_margins_shrink_with_sample_size(self, population, count_sum_avg_query):
        margins_by_n = {}
        for n in (500, 5_000):
            stats = compute_grouped_stats(
                population, count_sum_avg_query, np.arange(n)
            )
            _, margins = srs_estimate(stats, n, population.num_fact_rows, 0.95)
            margins_by_n[n] = margins[("a",)][0]
        assert margins_by_n[5_000] < margins_by_n[500]

    def test_min_max_have_no_margin(self, population):
        query = AggQuery(
            "p",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.MIN, "v"), Aggregate(AggFunc.MAX, "v")),
        )
        stats = compute_grouped_stats(population, query, np.arange(1_000))
        _, margins = srs_estimate(stats, 1_000, population.num_fact_rows, 0.95)
        for row in margins.values():
            assert row == (None, None)

    def test_singleton_avg_has_no_margin(self):
        table = Table("t", {"g": ["x", "y"], "v": [1.0, 2.0]})
        dataset = Dataset.from_table(table)
        query = AggQuery(
            "t",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.AVG, "v"),),
        )
        stats = compute_grouped_stats(dataset, query, np.array([0]))
        _, margins = srs_estimate(stats, 1, 2, 0.95)
        assert margins[("x",)] == (None,)

    def test_validation(self, population, count_sum_avg_query):
        stats = compute_grouped_stats(
            population, count_sum_avg_query, np.arange(10)
        )
        with pytest.raises(EngineError):
            srs_estimate(stats, 0, 100, 0.95)
        with pytest.raises(EngineError):
            srs_estimate(stats, 200, 100, 0.95)

    def test_coverage_near_confidence_level(self, population, rng):
        """~95 % of intervals must contain the truth (the key CI property)."""
        query = AggQuery(
            "p",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.AVG, "v"),),
        )
        exact = evaluate_exact(population, query)
        inside = total = 0
        for _ in range(150):
            sample = rng.choice(population.num_fact_rows, size=800, replace=False)
            stats = compute_grouped_stats(population, query, sample)
            values, margins = srs_estimate(
                stats, 800, population.num_fact_rows, 0.95
            )
            for key, (estimate,) in values.items():
                margin = margins[key][0]
                if margin is None or key not in exact.values:
                    continue
                total += 1
                if abs(estimate - exact.values[key][0]) <= margin:
                    inside += 1
        assert total > 300
        assert 0.90 <= inside / total <= 0.99


class TestStratifiedEstimate:
    def _strata(self, population, query, quotas, rng):
        groups = population.gather_column("g")
        strata = []
        for label in np.unique(groups):
            members = np.flatnonzero(groups == label)
            quota = min(quotas, len(members))
            chosen = rng.choice(members, size=quota, replace=False)
            stats = compute_grouped_stats(population, query, chosen)
            strata.append(
                StratumStats(
                    stats=stats,
                    weight=len(members) / quota,
                    sample_size=quota,
                )
            )
        return strata

    def test_count_estimates_close_to_truth(self, population, rng):
        query = AggQuery(
            "p",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        exact = evaluate_exact(population, query)
        strata = self._strata(population, query, 400, rng)
        values, margins = stratified_estimate(query, strata, 0.95)
        for key, (truth,) in exact.values.items():
            estimate = values[key][0]
            # Stratifying on the group column makes group counts near-exact.
            assert estimate == pytest.approx(truth, rel=0.02)
            assert margins[key][0] is not None

    def test_avg_ratio_estimator(self, population, rng):
        query = AggQuery(
            "p",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.AVG, "v"),),
        )
        exact = evaluate_exact(population, query)
        strata = self._strata(population, query, 500, rng)
        values, _ = stratified_estimate(query, strata, 0.95)
        for key, (truth,) in exact.values.items():
            assert values[key][0] == pytest.approx(truth, rel=0.05)

    def test_rare_stratum_guaranteed_presence(self, population, rng):
        query = AggQuery(
            "p",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        strata = self._strata(population, query, 10, rng)
        values, _ = stratified_estimate(query, strata, 0.95)
        assert ("c",) in values  # rare group cannot be missing

    def test_min_max_take_extrema_over_strata(self, population, rng):
        query = AggQuery(
            "p",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.MIN, "v"), Aggregate(AggFunc.MAX, "v")),
        )
        strata = self._strata(population, query, 200, rng)
        values, margins = stratified_estimate(query, strata, 0.95)
        for key in values:
            low, high = values[key]
            assert low <= high
            assert margins[key] == (None, None)

    def test_rejects_empty_strata(self):
        query = AggQuery(
            "p",
            bins=(BinDimension("g", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        with pytest.raises(EngineError):
            stratified_estimate(query, [], 0.95)
