"""LoadAdaptivePolicy tests: server-side signals drive user backoff."""

import pytest

from repro.common.errors import WorkflowError
from repro.server import SessionManager
from repro.workflow.graph import VizGraph
from repro.workflow.policy import (
    LoadAdaptivePolicy,
    PolicyView,
    interaction_mix,
    make_policy,
    mix_distance,
)
from repro.workflow.spec import CreateViz, DiscardViz, WorkflowType


@pytest.fixture()
def policy(server_ctx):
    from repro.workflow.generator import WorkflowGenerator

    generator = WorkflowGenerator(
        server_ctx.profiles(server_ctx.settings.data_size),
        table=server_ctx.settings.dataset,
        seed=server_ctx.settings.seed,
    )
    return LoadAdaptivePolicy(generator, per_session=1, seed=9,
                              backoff_depth=3)


def _view(graph, records=(), queue_depth=0, last_latency=0.0):
    return PolicyView(
        session_id="s",
        workflow_index=0,
        interaction_index=len(graph),
        graph=graph,
        records=list(records),
        queue_depth=queue_depth,
        last_latency=last_latency,
    )


def _graph_with(policy, n):
    graph = VizGraph()
    rng = policy._rng
    for _ in range(n):
        graph.apply(CreateViz(policy._generator.sample_viz_spec(
            rng, f"viz_{len(graph.viz_names)}"
        )))
    return graph


class FakeMetrics:
    def __init__(self, violated):
        self.tr_violated = violated
        self.bins_delivered = 5


class FakeRecord:
    def __init__(self, violated=False, latency=0.5, tr=1.0):
        self.metrics = FakeMetrics(violated)
        self.time_requirement = tr
        self.start_time = 0.0
        self.end_time = latency
        self.viz_name = "viz_0"


class TestBackoffSignals:
    def test_deep_queue_sheds_newest_viz(self, policy):
        policy.begin_workflow(0)
        graph = _graph_with(policy, 3)
        chosen = policy._choose(_view(graph, queue_depth=5))
        assert chosen == [DiscardViz("viz_2")]
        assert policy.backoffs == 1

    def test_tr_violation_triggers_backoff(self, policy):
        policy.begin_workflow(0)
        graph = _graph_with(policy, 2)
        record = FakeRecord(violated=True)
        policy.observe(record)
        chosen = policy._choose(_view(graph, records=[record]))
        assert chosen == [DiscardViz("viz_1")]

    def test_latency_overrun_triggers_backoff(self, policy):
        policy.begin_workflow(0)
        graph = _graph_with(policy, 2)
        record = FakeRecord(latency=1.4, tr=1.0)
        policy.observe(record)
        view = _view(graph, records=[record], last_latency=1.4)
        assert policy._choose(view) == [DiscardViz("viz_1")]

    def test_exact_deadline_completion_is_not_overload(self, policy):
        # Progressive engines complete exactly at the deadline; that must
        # not read as strain (latency must be strictly past TR).
        policy.begin_workflow(0)
        graph = _graph_with(policy, 2)
        record = FakeRecord(latency=1.0, tr=1.0)
        policy.observe(record)
        view = _view(graph, records=[record], last_latency=1.0)
        chosen = policy._choose(view)
        assert chosen != [DiscardViz("viz_1")]
        assert policy.backoffs == 0

    def test_stale_record_from_prior_workflow_ignored(self, server_ctx):
        # A violated record trailing workflow 0 must not make workflow 1
        # collapse after its first chart.
        from repro.workflow.generator import WorkflowGenerator

        generator = WorkflowGenerator(
            server_ctx.profiles(server_ctx.settings.data_size),
            table=server_ctx.settings.dataset,
            seed=server_ctx.settings.seed,
        )
        policy = LoadAdaptivePolicy(generator, per_session=2, seed=9)
        policy.begin_workflow(0)
        record = FakeRecord(violated=True)
        policy.observe(record)
        graph = _graph_with(policy, 2)
        assert policy._choose(_view(graph, records=[record])) == [
            DiscardViz("viz_1")
        ]
        assert policy.begin_workflow(1) is not None
        fresh = _graph_with(policy, 1)
        chosen = policy._choose(_view(fresh, records=[record]))
        assert chosen != []  # keeps working: the strain was workflow 0's
        assert policy.backoffs == 1

    def test_single_viz_under_load_ends_workflow(self, policy):
        policy.begin_workflow(0)
        graph = _graph_with(policy, 1)
        assert policy._choose(_view(graph, queue_depth=9)) == []

    def test_empty_dashboard_always_starts_working(self, policy):
        policy.begin_workflow(0)
        record = FakeRecord(violated=True)  # stale stress from workflow 0
        chosen = policy._choose(_view(VizGraph(), records=[record]))
        assert chosen and isinstance(chosen[0], CreateViz)

    def test_plan_names_are_load_adaptive(self, policy):
        plan = policy.begin_workflow(0)
        assert plan.name.startswith("load_adaptive_")
        assert policy.begin_workflow(1) is None


class TestConstruction:
    def test_registry_and_make_policy(self, policy):
        built = make_policy(
            "load-adaptive",
            generator=policy._generator,
            per_session=2,
            workflow_type=WorkflowType.MIXED,
            seed=3,
        )
        assert isinstance(built, LoadAdaptivePolicy)

    def test_requires_generator(self):
        with pytest.raises(WorkflowError, match="generator"):
            make_policy("load-adaptive")

    def test_validates_parameters(self, policy):
        with pytest.raises(WorkflowError, match="backoff_depth"):
            LoadAdaptivePolicy(policy._generator, 1, backoff_depth=0)
        with pytest.raises(WorkflowError, match="backoff_fraction"):
            LoadAdaptivePolicy(policy._generator, 1, backoff_fraction=0.0)


class TestServedBehavior:
    def test_deterministic_across_runs(self, server_ctx):
        def run():
            return SessionManager.for_engine(
                server_ctx, "monetdb-sim", 2, per_session=1,
                policy="load-adaptive",
            ).run()

        first, second = run(), run()
        assert [r.csv_text() for r in first] == [r.csv_text() for r in second]

    def test_backs_off_relative_to_markov_under_strain(self, server_ctx):
        def serve(policy):
            return SessionManager.for_engine(
                server_ctx, "monetdb-sim", 2, per_session=1, policy=policy
            ).run()

        adaptive = serve("load-adaptive")
        markov = serve("markov")

        def mix(results):
            counts = {}
            for result in results:
                for kind, count in result.interaction_counts.items():
                    counts[kind] = counts.get(kind, 0) + count
            return interaction_mix(counts)

        # The blocking engine leaves queries in flight across think
        # steps, so the load-adaptive user issues measurably less work.
        assert sum(r.num_queries for r in adaptive) < sum(
            r.num_queries for r in markov
        )
        assert mix_distance(mix(adaptive), mix(markov)) > 0.05

    def test_queue_depth_signal_reaches_policy(self, server_ctx):
        # With backoff_depth=1 any in-flight query trips the signal, so
        # PolicyView plumbing is observable end to end.
        from repro.workflow.generator import WorkflowGenerator

        from repro.server import SessionSpec
        from repro.server.manager import shared_policy_generator

        generator = shared_policy_generator(server_ctx)
        policy = LoadAdaptivePolicy(generator, per_session=1, seed=1,
                                    backoff_depth=1)
        spec = SessionSpec(session_id="s0", policy="load-adaptive", seed=1)
        from repro.bench.experiments import make_engine
        from repro.bench.driver import SessionDriver
        from repro.common.clock import VirtualClock

        settings = server_ctx.settings
        engine = make_engine(
            "monetdb-sim",
            server_ctx.dataset(settings.data_size, False),
            settings, VirtualClock(), False,
        )
        engine.prepare()
        driver = SessionDriver(
            engine, server_ctx.oracle(settings.data_size, False), settings,
            [], session_id="s0", policy=policy,
        )
        driver.run()
        assert policy.backoffs >= 1
