"""Tests for WorkloadConfig serialization and the CLI --config path."""

import json

import pytest

from repro.cli import main
from repro.common.errors import WorkflowError
from repro.workflow.generator import WorkflowGenerator, WorkloadConfig
from repro.workflow.spec import Workflow, WorkflowType


class TestConfigRoundTrip:
    def test_default_round_trips(self):
        config = WorkloadConfig()
        assert WorkloadConfig.from_dict(config.to_dict()) == config

    def test_custom_round_trips(self):
        config = WorkloadConfig(
            interactions_min=5,
            interactions_max=8,
            two_dim_probability=0.5,
            agg_distribution=(("count", 1.0),),
            filter_selectivity_range=(0.1, 0.2),
        )
        assert WorkloadConfig.from_dict(config.to_dict()) == config

    def test_json_file_round_trip(self, tmp_path):
        config = WorkloadConfig(max_vizs=4, max_fanout=3)
        path = tmp_path / "config.json"
        config.to_json(path)
        assert WorkloadConfig.from_json(path) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(WorkflowError, match="unknown"):
            WorkloadConfig.from_dict({"supercharged": True})

    def test_validation_applies_on_load(self):
        data = WorkloadConfig().to_dict()
        data["interactions_min"] = 0
        with pytest.raises(WorkflowError):
            WorkloadConfig.from_dict(data)

    def test_loaded_config_drives_generator(self, flights_profiles, tmp_path):
        config = WorkloadConfig(
            interactions_min=4, interactions_max=5,
            agg_distribution=(("count", 1.0),),
        )
        path = tmp_path / "config.json"
        config.to_json(path)
        loaded = WorkloadConfig.from_json(path)
        generator = WorkflowGenerator(
            flights_profiles, "flights", config=loaded, seed=3
        )
        workflow = generator.generate(WorkflowType.INDEPENDENT, 0)
        assert 4 <= workflow.num_interactions <= 5


class TestCliConfig:
    def test_generate_workflows_with_config(self, tmp_path):
        config_path = tmp_path / "config.json"
        WorkloadConfig(interactions_min=4, interactions_max=4).to_json(config_path)
        out = tmp_path / "suite"
        code = main([
            "generate-workflows", "--out", str(out), "--per-type", "1",
            "--config", str(config_path), "--scale", "5000", "--size", "S",
            "--seed", "3",
        ])
        assert code == 0
        for path in sorted(out.glob("*.json")):
            workflow = Workflow.from_json(path)
            assert workflow.num_interactions == 4

    def test_run_with_cdf_flag(self, tmp_path, capsys):
        code = main([
            "run", "--engine", "idea-sim", "--tr", "1", "--scale", "5000",
            "--size", "S", "--per-type", "1", "--seed", "3", "--cdf",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "CDF of mean relative errors" in stdout
