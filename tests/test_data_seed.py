"""Tests for the synthetic flights seed dataset."""

import numpy as np
import pytest

from repro.common.errors import DataGenerationError
from repro.data.seed import (
    FLIGHTS_COLUMNS,
    NUM_AIRPORTS,
    NUM_CARRIERS,
    flights_column_kinds,
    generate_flights_seed,
    hub_airports,
)
from repro.data.stats import empirical_correlation


class TestSchema:
    def test_columns_match_figure_2(self, flights_table):
        assert tuple(flights_table.column_names) == FLIGHTS_COLUMNS

    def test_nominal_columns_are_strings(self, flights_table):
        for name, kind in flights_column_kinds().items():
            if kind == "nominal":
                assert flights_table[name].dtype.kind == "U", name
            else:
                assert flights_table[name].dtype.kind in ("i", "f"), name

    def test_cardinalities(self, flights_table):
        assert len(np.unique(flights_table["UNIQUE_CARRIER"])) == NUM_CARRIERS
        assert len(np.unique(flights_table["ORIGIN"])) <= NUM_AIRPORTS

    def test_25_carriers_for_exp3(self):
        # §5.4's workflow uses a 25-bin carrier histogram.
        assert NUM_CARRIERS == 25


class TestDistributions:
    def test_delays_are_right_skewed(self, flights_table):
        delays = flights_table["DEP_DELAY"]
        mean, median = float(np.mean(delays)), float(np.median(delays))
        assert mean > median  # heavy right tail

    def test_dep_arr_delay_strongly_correlated(self, flights_table):
        r = empirical_correlation(
            flights_table["DEP_DELAY"].astype(float),
            flights_table["ARR_DELAY"].astype(float),
        )
        assert r > 0.8

    def test_distance_airtime_consistent(self, flights_table):
        r = empirical_correlation(
            flights_table["DISTANCE"].astype(float),
            flights_table["AIR_TIME"].astype(float),
        )
        assert r > 0.9

    def test_carriers_are_zipf_skewed(self, flights_table):
        _, counts = np.unique(flights_table["UNIQUE_CARRIER"], return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 5 * counts[-1]

    def test_times_within_day(self, flights_table):
        for column in ("DEP_TIME", "ARR_TIME"):
            values = flights_table[column]
            assert values.min() >= 0
            assert values.max() < 1440

    def test_values_physically_plausible(self, flights_table):
        assert flights_table["DISTANCE"].min() >= 50
        assert flights_table["AIR_TIME"].min() >= 15
        assert flights_table["ELAPSED_TIME"].min() >= 20
        assert set(np.unique(flights_table["MONTH"])) <= set(range(1, 13))
        assert set(np.unique(flights_table["DAY_OF_WEEK"])) <= set(range(1, 8))

    def test_origin_rarely_equals_dest(self, flights_table):
        same = (flights_table["ORIGIN"] == flights_table["DEST"]).mean()
        assert same < 0.01


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_flights_seed(500, seed=3)
        b = generate_flights_seed(500, seed=3)
        assert a.equals(b)

    def test_different_seed_different_data(self):
        a = generate_flights_seed(500, seed=3)
        b = generate_flights_seed(500, seed=4)
        assert not a.equals(b)

    def test_rejects_zero_rows(self):
        with pytest.raises(DataGenerationError):
            generate_flights_seed(0)

    def test_hub_airports_deterministic(self):
        assert hub_airports(3) == hub_airports(3)
        assert len(hub_airports(5)) == 5
