"""Tests for the parallel run-matrix executor.

The matrices here are tiny (2 000 actual rows, 1 workflow per cell) so the
parallel paths — real ``ProcessPoolExecutor`` workers — stay fast.
"""

import pytest

from repro.bench.experiments import ExperimentContext, exp_overall
from repro.common.config import BenchmarkSettings, DataSize
from repro.common.errors import BenchmarkError
from repro.runtime import (
    ArtifactStore,
    MatrixExecutor,
    RunSpec,
    matrix_csv_text,
    plan_overall,
    plan_prep_times,
    result_key,
)
from repro.runtime import executor as executor_module


@pytest.fixture(scope="module")
def settings():
    # S mapped onto 2 000 actual rows: large enough for non-trivial cells,
    # small enough that pool workers regenerate it in well under a second.
    return BenchmarkSettings(
        data_size=DataSize.S, scale=50_000, workflows_per_type=1, seed=23
    )


@pytest.fixture(scope="module")
def specs(settings):
    return plan_overall(
        settings, ("monetdb-sim", "idea-sim"), (0.5, 3.0), 1, DataSize.S
    )


def _csv(results):
    return matrix_csv_text(results)


class TestSerialExecution:
    def test_results_align_with_plan_order(self, settings, specs):
        results = MatrixExecutor(jobs=1).run(specs)
        assert [r.spec for r in results] == list(specs)
        assert all(not r.from_cache for r in results)
        assert all(len(r.records) > 0 for r in results)

    def test_matches_exp_overall(self, settings, specs):
        results = MatrixExecutor(jobs=1).run(specs)
        ctx = ExperimentContext(settings)
        overall = exp_overall(
            ctx,
            engines=("monetdb-sim", "idea-sim"),
            time_requirements=(0.5, 3.0),
            workflows_per_type=1,
        )
        for result in results:
            spec = result.spec
            expected = overall.records[(spec.engine, spec.settings.time_requirement)]
            got = [r.metrics.missing_bins for r in result.records]
            want = [r.metrics.missing_bins for r in expected]
            assert got == want

    def test_prepare_mode(self, settings):
        results = MatrixExecutor(jobs=1).run(
            plan_prep_times(settings, ("monetdb-sim", "idea-sim"), DataSize.S)
        )
        assert all(r.prep is not None for r in results)
        assert all(r.records == [] for r in results)
        assert results[0].prep.seconds > 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(BenchmarkError):
            MatrixExecutor(jobs=0)


class TestParallelDeterminism:
    def test_parallel_bit_identical_to_serial(self, specs):
        serial = MatrixExecutor(jobs=1).run(specs)
        parallel = MatrixExecutor(jobs=2).run(specs)
        assert _csv(serial) == _csv(parallel)
        # Beyond the summary: every per-query detailed row matches
        # bit-for-bit (rows render NaN as "", sidestepping NaN != NaN).
        from repro.bench.report import DetailedReport

        for left, right in zip(serial, parallel):
            assert (
                DetailedReport(left.records).rows()
                == DetailedReport(right.records).rows()
            )

    def test_parallel_with_store_bit_identical(self, specs, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        serial = MatrixExecutor(jobs=1).run(specs)
        parallel = MatrixExecutor(jobs=2, store=store).run(specs)
        assert _csv(serial) == _csv(parallel)


class TestCachingAndResume:
    def test_second_run_restores_everything(self, specs, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        first = MatrixExecutor(jobs=1, store=store).run(specs)
        assert all(not r.from_cache for r in first)

        second = MatrixExecutor(jobs=1, store=ArtifactStore(tmp_path / "cache")).run(
            specs
        )
        assert all(r.from_cache for r in second)
        assert _csv(first) == _csv(second)

    def test_cached_run_executes_nothing(self, specs, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "cache")
        MatrixExecutor(jobs=1, store=store).run(specs)

        def boom(ctx, spec):
            raise AssertionError("cell executed despite cached result")

        monkeypatch.setattr(executor_module, "execute_cell", boom)
        restored = MatrixExecutor(jobs=1, store=store).run(specs)
        assert all(r.from_cache for r in restored)

    def test_force_reexecutes(self, specs, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        MatrixExecutor(jobs=1, store=store).run(specs)
        forced = MatrixExecutor(jobs=1, store=store, reuse_results=False).run(specs)
        assert all(not r.from_cache for r in forced)

    def test_resume_after_mid_matrix_crash(self, settings, specs, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        # Simulated crash: the third cell names an engine that does not
        # exist, so the run dies after two cells completed and persisted.
        crashing = list(specs[:2]) + [
            RunSpec(engine="no-such-engine", settings=settings)
        ]
        with pytest.raises(BenchmarkError):
            MatrixExecutor(jobs=1, store=store).run(crashing)
        assert store.get(result_key(specs[0])) is not None
        assert store.get(result_key(specs[1])) is not None

        # Resuming the *full* intended matrix restores the finished cells
        # and only executes the remainder.
        resumed = MatrixExecutor(jobs=1, store=store).run(specs)
        assert [r.from_cache for r in resumed] == [True, True, False, False]
        assert _csv(resumed) == _csv(MatrixExecutor(jobs=1).run(specs))

    def test_parallel_workers_persist_cells(self, specs, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        MatrixExecutor(jobs=2, store=store).run(specs)
        for spec in specs:
            assert store.get(result_key(spec)) is not None


class TestContextReuse:
    def test_local_context_is_reused(self, settings, specs):
        ctx = ExperimentContext(settings)
        executor = MatrixExecutor(jobs=1, local_context=ctx)
        executor.run(specs[:1])
        # The context's in-memory caches were warmed through the executor.
        assert ctx._tables  # noqa: SLF001 — asserting the cache side effect
        assert executor._contexts == {}

    def test_foreign_context_not_reused(self, settings, specs):
        other = ExperimentContext(settings.with_(seed=99))
        executor = MatrixExecutor(jobs=1, local_context=other)
        executor.run(specs[:1])
        assert len(executor._contexts) == 1
