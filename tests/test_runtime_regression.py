"""Unit tests for the cross-run regression tracker."""

import pytest

from repro.common.errors import BenchmarkError
from repro.runtime.regression import (
    FALLBACK_REVISION,
    current_revision,
    diff_revisions,
    snapshot,
    snapshots,
)


@pytest.fixture()
def store(tmp_path):
    return tmp_path / "regress"


def _csv(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestSnapshot:
    def test_stores_bytes_verbatim(self, tmp_path, store):
        source = _csv(tmp_path, "m.csv", "a,b\r\n1,2\r\n")
        target = snapshot(store, "abc1234", "matrix", source)
        assert target.read_bytes() == source.read_bytes()
        assert snapshots(store) == {"abc1234": ["matrix"]}

    def test_multiple_kinds_per_revision(self, tmp_path, store):
        snapshot(store, "r1", "matrix", _csv(tmp_path, "a.csv", "x\n"))
        snapshot(store, "r1", "sessions", _csv(tmp_path, "b.csv", "y\n"))
        assert snapshots(store) == {"r1": ["matrix", "sessions"]}

    def test_missing_source_rejected(self, tmp_path, store):
        with pytest.raises(BenchmarkError, match="does not exist"):
            snapshot(store, "r1", "matrix", tmp_path / "nope.csv")

    @pytest.mark.parametrize("bad", ["", "a/b", "..", ".hidden"])
    def test_unsafe_names_rejected(self, tmp_path, store, bad):
        source = _csv(tmp_path, "m.csv", "x\n")
        with pytest.raises(BenchmarkError, match="invalid"):
            snapshot(store, bad, "matrix", source)
        with pytest.raises(BenchmarkError, match="invalid"):
            snapshot(store, "rev", bad, source)

    def test_empty_store_lists_nothing(self, store):
        assert snapshots(store) == {}


class TestDiff:
    def test_identical_revisions(self, tmp_path, store):
        source = _csv(tmp_path, "m.csv", "a,b\n1,2\n")
        snapshot(store, "r1", "matrix", source)
        snapshot(store, "r2", "matrix", source)
        identical, report = diff_revisions(store, "r1", "r2")
        assert identical
        assert "identical" in report

    def test_changed_bytes_render_a_unified_diff(self, tmp_path, store):
        snapshot(store, "r1", "matrix", _csv(tmp_path, "a.csv", "a,b\n1,2\n"))
        snapshot(store, "r2", "matrix", _csv(tmp_path, "b.csv", "a,b\n1,3\n"))
        identical, report = diff_revisions(store, "r1", "r2")
        assert not identical
        assert "matrix: DIFFERS" in report
        assert "-1,2" in report and "+1,3" in report

    def test_kind_present_on_one_side_only(self, tmp_path, store):
        snapshot(store, "r1", "matrix", _csv(tmp_path, "a.csv", "x\n"))
        snapshot(store, "r2", "sessions", _csv(tmp_path, "b.csv", "x\n"))
        identical, report = diff_revisions(store, "r1", "r2")
        assert not identical
        assert "only in r1: matrix" in report
        assert "only in r2: sessions" in report

    def test_unknown_revision_rejected_with_known_list(self, tmp_path, store):
        snapshot(store, "r1", "matrix", _csv(tmp_path, "a.csv", "x\n"))
        with pytest.raises(BenchmarkError, match="known revisions: r1"):
            diff_revisions(store, "r1", "r9")


class TestCurrentRevision:
    def test_inside_this_repo_returns_short_hash(self):
        revision = current_revision()
        assert revision == FALLBACK_REVISION or (
            4 <= len(revision) <= 16 and revision.isalnum()
        )

    def test_outside_a_repo_falls_back(self, tmp_path):
        assert current_revision(tmp_path) == FALLBACK_REVISION
