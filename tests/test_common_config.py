"""Tests for benchmark settings (§4.6) and their serialization."""

import pytest

from repro.common.config import (
    BenchmarkSettings,
    DataSize,
    DEFAULT_TIME_REQUIREMENTS,
)
from repro.common.errors import ConfigurationError


class TestDataSize:
    def test_paper_sizes(self):
        assert DataSize.S.virtual_rows == 100_000_000
        assert DataSize.M.virtual_rows == 500_000_000
        assert DataSize.L.virtual_rows == 1_000_000_000

    @pytest.mark.parametrize("text,expected", [
        ("S", DataSize.S),
        ("m", DataSize.M),
        ("L", DataSize.L),
        ("500m", DataSize.M),
        ("100M", DataSize.S),
        ("1b", DataSize.L),
        (500_000_000, DataSize.M),
        (DataSize.L, DataSize.L),
    ])
    def test_parse(self, text, expected):
        assert DataSize.parse(text) is expected

    @pytest.mark.parametrize("bad", ["XXL", "12q", "", 123])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ConfigurationError):
            DataSize.parse(bad)


class TestBenchmarkSettings:
    def test_defaults_match_paper(self):
        settings = BenchmarkSettings()
        assert settings.data_size is DataSize.M
        assert settings.confidence_level == 0.95
        assert settings.workflows_per_type == 10
        assert DEFAULT_TIME_REQUIREMENTS == (0.5, 1.0, 3.0, 5.0, 10.0)

    def test_actual_rows_divides_by_scale(self):
        settings = BenchmarkSettings(data_size=DataSize.M, scale=1000)
        assert settings.actual_rows == 500_000
        assert settings.virtual_rows == 500_000_000

    def test_with_creates_modified_copy(self):
        base = BenchmarkSettings()
        derived = base.with_(time_requirement=0.5)
        assert derived.time_requirement == 0.5
        assert base.time_requirement == 3.0

    @pytest.mark.parametrize("field,value", [
        ("time_requirement", 0.0),
        ("time_requirement", -1.0),
        ("think_time", -0.1),
        ("confidence_level", 0.2),
        ("confidence_level", 1.0),
        ("scale", 0),
        ("report_interval", 0.0),
        ("workflows_per_type", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            BenchmarkSettings(**{field: value})

    def test_dict_round_trip(self):
        settings = BenchmarkSettings(
            time_requirement=1.0, data_size=DataSize.L, use_joins=True, seed=7
        )
        assert BenchmarkSettings.from_dict(settings.to_dict()) == settings

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            BenchmarkSettings.from_dict({"time_requirement": 1.0, "bogus": 2})

    def test_json_round_trip(self, tmp_path):
        settings = BenchmarkSettings(think_time=5.0, scale=250)
        path = tmp_path / "settings.json"
        settings.to_json(path)
        assert BenchmarkSettings.from_json(path) == settings
