"""Tests for SQL generation and the round-trip parser (paper Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.common.errors import QueryError, SQLParseError
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.query.filters import (
    And,
    Comparison,
    Or,
    RangePredicate,
    SetPredicate,
    evaluate_filter,
)
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind
from repro.query.sql import query_to_sql
from repro.query.sql_parser import parse_sql, tokenize


def _mixed_query(filter_expr=None):
    return AggQuery(
        "flights",
        bins=(
            BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=10.0),
            BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),
        ),
        aggregates=(Aggregate(AggFunc.COUNT), Aggregate(AggFunc.AVG, "ARR_DELAY")),
        filter=filter_expr,
    )


class TestGeneration:
    def test_basic_shape(self):
        sql = query_to_sql(_mixed_query())
        assert sql.startswith("SELECT ")
        assert "FLOOR((DEP_DELAY - 0) / 10) AS bin_0" in sql
        assert "UNIQUE_CARRIER AS bin_1" in sql
        assert "COUNT(*) AS count" in sql
        assert "AVG(ARR_DELAY) AS avg_ARR_DELAY" in sql
        assert sql.rstrip().endswith("GROUP BY bin_0, bin_1")
        assert "WHERE" not in sql

    def test_filter_rendering(self):
        sql = query_to_sql(
            _mixed_query(
                And(
                    RangePredicate("DISTANCE", 100, 500),
                    SetPredicate("ORIGIN_STATE", frozenset(["CA", "NY"])),
                    Comparison("MONTH", "!=", 6),
                )
            )
        )
        assert "(DISTANCE >= 100 AND DISTANCE < 500)" in sql
        assert "ORIGIN_STATE IN ('CA', 'NY')" in sql
        assert "MONTH != 6" in sql

    def test_string_literal_escaping(self):
        query = AggQuery(
            "t",
            bins=(BinDimension("c", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
            filter=Comparison("c", "=", "O'Hare"),
        )
        sql = query_to_sql(query)
        assert "'O''Hare'" in sql

    def test_unresolved_query_rejected(self):
        query = AggQuery(
            "t",
            bins=(BinDimension("v", BinKind.QUANTITATIVE, bin_count=5),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        with pytest.raises(QueryError):
            query_to_sql(query)

    def test_normalized_emits_joins(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        sql = query_to_sql(_mixed_query(), star)
        assert "FROM flights_fact" in sql
        assert "JOIN carriers AS t_carrier_key" in sql
        assert "t_carrier_key.code AS bin_1" in sql

    def test_normalized_without_dim_columns_has_no_joins(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        query = AggQuery(
            "flights",
            bins=(BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=10.0),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        assert "JOIN" not in query_to_sql(query, star)


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select x froM t")
        assert tokens[0].kind == "keyword" and tokens[0].text == "SELECT"
        assert tokens[2].kind == "keyword" and tokens[2].text == "FROM"

    def test_numbers_and_strings(self):
        tokens = tokenize("-1.5e3 'it''s'")
        assert tokens[0].kind == "number"
        assert tokens[1].kind == "string"

    def test_rejects_garbage(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT @")


class TestRoundTrip:
    @pytest.mark.parametrize("filter_expr", [
        None,
        RangePredicate("DISTANCE", 100.0, 500.0),
        SetPredicate("ORIGIN_STATE", frozenset(["CA", "NY", "TX"])),
        Comparison("MONTH", "=", 6.0),
        Comparison("UNIQUE_CARRIER", "!=", "AA"),
        And(RangePredicate("DISTANCE", 0.0, 10.0),
            SetPredicate("ORIGIN", frozenset(["AAA"]))),
        Or(Comparison("MONTH", "=", 1.0), Comparison("MONTH", "=", 2.0)),
        And(Or(Comparison("MONTH", "=", 1.0), Comparison("MONTH", "=", 2.0)),
            RangePredicate("DISTANCE", 5.0, 6.0)),
    ])
    def test_structural_round_trip(self, filter_expr):
        query = _mixed_query(filter_expr)
        assert parse_sql(query_to_sql(query)) == query

    def test_normalized_round_trip(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        query = _mixed_query(
            And(
                RangePredicate("DISTANCE", 100.0, 1000.0),
                SetPredicate("ORIGIN_STATE", frozenset(["CA"])),
            )
        )
        assert parse_sql(query_to_sql(query, star), star) == query

    def test_single_aggregate_functions(self):
        for func in (AggFunc.SUM, AggFunc.MIN, AggFunc.MAX, AggFunc.AVG):
            query = AggQuery(
                "flights",
                bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
                aggregates=(Aggregate(func, "DISTANCE"),),
            )
            assert parse_sql(query_to_sql(query)) == query

    def test_semantic_round_trip_on_data(self, flights_table):
        """Parsed filters select exactly the same rows as the originals."""
        filters = [
            RangePredicate("DEP_DELAY", -5.0, 60.0),
            And(RangePredicate("DISTANCE", 200.0, 900.0),
                SetPredicate("DEST_STATE", frozenset(["CA", "WA"]))),
        ]
        for filter_expr in filters:
            query = _mixed_query(filter_expr)
            parsed = parse_sql(query_to_sql(query))
            original_mask = evaluate_filter(
                query.filter, flights_table.__getitem__, flights_table.num_rows
            )
            parsed_mask = evaluate_filter(
                parsed.filter, flights_table.__getitem__, flights_table.num_rows
            )
            assert np.array_equal(original_mask, parsed_mask)


class TestParserErrors:
    @pytest.mark.parametrize("sql", [
        "",                                            # empty
        "SELECT COUNT(*) AS count FROM t",             # no GROUP BY
        "SELECT c AS bin_0 FROM t GROUP BY bin_0",     # no aggregate
        "SELECT COUNT(*) AS count FROM t GROUP BY ghost",  # unknown label
        "SELECT c AS bin_0, COUNT(*) AS count FROM t GROUP BY count",  # agg label
        "SELECT c AS bin_0, COUNT(*) AS count FROM t GROUP BY bin_0 EXTRA",
    ])
    def test_rejects_malformed(self, sql):
        with pytest.raises(SQLParseError):
            parse_sql(sql)

    def test_duplicate_labels_rejected(self):
        sql = "SELECT a AS bin_0, b AS bin_0, COUNT(*) AS count FROM t GROUP BY bin_0"
        with pytest.raises(SQLParseError):
            parse_sql(sql)


@hyp_settings(max_examples=40, deadline=None)
@given(
    width=st.floats(0.5, 1000),
    reference=st.floats(-1000, 1000),
    low=st.floats(-100, 100),
    span=st.floats(0.1, 100),
)
def test_numeric_round_trip_property(width, reference, low, span):
    """Property: widths/references/bounds survive SQL formatting exactly
    enough that the parsed query equals the original."""
    query = AggQuery(
        "t",
        bins=(BinDimension("v", BinKind.QUANTITATIVE,
                           width=float(width), reference=float(reference)),),
        aggregates=(Aggregate(AggFunc.COUNT),),
        filter=RangePredicate("w", float(low), float(low + span)),
    )
    parsed = parse_sql(query_to_sql(query))
    assert parsed.bins[0].width == pytest.approx(width, rel=1e-12)
    assert parsed.bins[0].reference == pytest.approx(reference, rel=1e-12)
    assert parsed.filter.low == pytest.approx(low, rel=1e-12)
