"""Tests for the IDE frontend layer (System Y stand-in)."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import EngineError
from repro.engines.columnstore import ColumnStoreEngine
from repro.engines.frontend import FrontendEngine


@pytest.fixture
def engine(flights_dataset, tiny_settings):
    backend = ColumnStoreEngine(flights_dataset, tiny_settings, VirtualClock())
    engine = FrontendEngine(backend)
    engine.prepare()
    return engine


def _run_to(engine, t):
    engine.clock.advance_to(t)
    engine.advance_to(t)


class TestRenderingOverhead:
    def test_result_delayed_by_one_to_two_seconds(self, engine,
                                                  carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 200.0)
        backend_finish = engine.backend.finished_at(handle)
        frontend_finish = engine.finished_at(handle)
        overhead = frontend_finish - backend_finish
        assert 1.0 <= overhead <= 2.0

    def test_result_invisible_during_rendering(self, engine,
                                               carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 200.0)
        backend_finish = engine.backend.finished_at(handle)
        frontend_finish = engine.finished_at(handle)
        midpoint = (backend_finish + frontend_finish) / 2
        assert engine.backend.result_at(handle, midpoint) is not None
        assert engine.result_at(handle, midpoint) is None
        assert engine.result_at(handle, frontend_finish + 0.01) is not None

    def test_overhead_deterministic_per_handle(self, flights_dataset,
                                               tiny_settings,
                                               carrier_count_query):
        def overhead_of_first_query():
            backend = ColumnStoreEngine(
                flights_dataset, tiny_settings, VirtualClock()
            )
            engine = FrontendEngine(backend)
            engine.prepare()
            handle = engine.submit(carrier_count_query)
            engine.clock.advance_to(100.0)
            engine.advance_to(100.0)
            return engine.finished_at(handle) - backend.finished_at(handle)

        assert overhead_of_first_query() == overhead_of_first_query()

    def test_overheads_vary_between_queries(self, engine, carrier_count_query,
                                            delay_avg_query):
        a = engine.submit(carrier_count_query)
        b = engine.submit(delay_avg_query)
        assert engine._overhead(a) != engine._overhead(b)

    def test_no_result_before_submission_time(self, engine,
                                              carrier_count_query):
        handle = engine.submit(carrier_count_query)
        assert engine.result_at(handle, 0.0) is None


class TestDelegation:
    def test_capabilities_delegate_to_backend(self, engine):
        assert engine.capabilities.supports_joins  # columnstore's

    def test_prepare_renames_report(self, flights_dataset, tiny_settings):
        backend = ColumnStoreEngine(flights_dataset, tiny_settings, VirtualClock())
        engine = FrontendEngine(backend)
        report = engine.prepare()
        assert report.engine == "system-y-sim"
        assert report.seconds > 0

    def test_no_prefetch_on_link(self, engine, carrier_count_query):
        # §5.6: no prefetching layer found — the hint must be dropped.
        engine.link_vizs([carrier_count_query])  # must not raise or speculate

    def test_cancel_propagates(self, engine, carrier_count_query):
        handle = engine.submit(carrier_count_query)
        engine.cancel(handle)
        _run_to(engine, 100.0)
        assert engine.finished_at(handle) is None

    def test_completion_time_caps_at_deadline(self, engine,
                                              carrier_count_query):
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 200.0)
        finished = engine.finished_at(handle)
        assert engine.completion_time(handle, finished + 1) == finished
        assert engine.completion_time(handle, 0.5) == 0.5

    def test_unknown_handle_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.result_at(999, 1.0)

    def test_invalid_overhead_bounds_rejected(self, flights_dataset,
                                              tiny_settings):
        backend = ColumnStoreEngine(flights_dataset, tiny_settings, VirtualClock())
        with pytest.raises(EngineError):
            FrontendEngine(backend, render_overhead=(2.0, 1.0))
