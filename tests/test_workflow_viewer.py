"""Tests for the terminal workflow viewer."""

import pytest

from repro.workflow.generator import WorkflowGenerator
from repro.workflow.spec import WorkflowType
from repro.workflow.viewer import render_workflow


@pytest.fixture(scope="module")
def workflow(flights_profiles):
    return WorkflowGenerator(flights_profiles, "flights", seed=4).generate(
        WorkflowType.ONE_TO_N, 0
    )


class TestRenderWorkflow:
    def test_contains_header_and_interactions(self, workflow):
        text = render_workflow(workflow)
        assert workflow.name in text
        assert "final dashboard" in text
        # every interaction index appears
        for index in range(workflow.num_interactions):
            assert f"{index:3d}. " in text

    def test_reports_query_counts(self, workflow):
        text = render_workflow(workflow)
        assert "quer" in text  # "[1 query]" / "[N queries]"

    def test_sql_mode_emits_statements(self, workflow):
        text = render_workflow(workflow, show_sql=True, max_sql=3)
        assert "SELECT" in text
        assert "GROUP BY" in text

    def test_sql_cap_respected(self, workflow):
        text = render_workflow(workflow, show_sql=True, max_sql=1)
        assert text.count("GROUP BY") == 1

    def test_render_is_deterministic(self, workflow):
        assert render_workflow(workflow) == render_workflow(workflow)
