"""Tests for star-schema normalization (§4.2/§5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.common.errors import DataGenerationError
from repro.data.normalize import (
    DimensionSpec,
    FLIGHTS_STAR_SPEC,
    denormalize,
    normalize,
)
from repro.data.storage import Table


class TestFlightsStarSchema:
    @pytest.fixture(scope="class")
    def star(self, flights_table):
        return normalize(flights_table, FLIGHTS_STAR_SPEC)

    def test_creates_fact_and_dimensions(self, star):
        assert set(star.tables) == {"flights_fact", "airports", "carriers"}
        assert star.fact_table == "flights_fact"
        assert star.is_normalized

    def test_fact_has_fk_columns_not_strings(self, star):
        fact = star.fact
        for fk_column in ("ORIGIN_KEY", "DEST_KEY", "CARRIER_KEY"):
            assert fk_column in fact
            assert fact[fk_column].dtype == np.int64
        for moved in ("ORIGIN", "DEST", "UNIQUE_CARRIER", "ORIGIN_STATE", "DEST_STATE"):
            assert moved not in fact

    def test_dimension_keys_equal_row_positions(self, star):
        airports = star.tables["airports"]
        assert np.array_equal(
            airports["airports_key"], np.arange(airports.num_rows)
        )

    def test_role_playing_dimension_unions_roles(self, star, flights_table):
        airports = star.tables["airports"]
        seen = set(np.unique(flights_table["ORIGIN"])) | set(
            np.unique(flights_table["DEST"])
        )
        assert set(airports["code"]) == seen

    def test_dimension_rows_are_unique(self, star):
        airports = star.tables["airports"]
        pairs = list(zip(airports["code"], airports["state"]))
        assert len(pairs) == len(set(pairs))

    def test_gather_column_reconstructs_values(self, star, flights_table):
        for logical in ("ORIGIN", "DEST_STATE", "UNIQUE_CARRIER"):
            assert np.array_equal(
                star.gather_column(logical), flights_table[logical]
            ), logical

    def test_normalization_reduces_total_cells(self, star, flights_table):
        # The §5.3 observation: splitting into fact + dims reduces size.
        flat_string_cells = flights_table.num_rows * 5  # five string columns
        dim_cells = sum(
            star.tables[t].num_rows * len(star.tables[t].column_names)
            for t in ("airports", "carriers")
        )
        assert dim_cells < flat_string_cells

    def test_denormalize_round_trip(self, star, flights_table):
        flat = denormalize(star)
        assert sorted(flat.column_names) == sorted(flights_table.column_names)
        for column in flights_table.column_names:
            assert np.array_equal(flat[column], flights_table[column]), column

    def test_denormalize_of_flat_dataset_is_identity(self, flights_dataset):
        assert denormalize(flights_dataset) is flights_dataset.fact


class TestSpecValidation:
    def test_rejects_empty_specs(self, flights_table):
        with pytest.raises(DataGenerationError):
            normalize(flights_table, [])

    def test_rejects_unknown_column(self, flights_table):
        spec = DimensionSpec("d", "D_KEY", (("GHOST", "g"),))
        with pytest.raises(DataGenerationError):
            normalize(flights_table, [spec])

    def test_rejects_duplicate_fact_column(self, flights_table):
        specs = [
            DimensionSpec("d", "K", (("ORIGIN", "code"),)),
            DimensionSpec("e", "K", (("DEST", "code"),)),
        ]
        with pytest.raises(DataGenerationError):
            normalize(flights_table, specs)

    def test_rejects_column_claimed_twice(self, flights_table):
        specs = [
            DimensionSpec("d", "K1", (("ORIGIN", "code"),)),
            DimensionSpec("e", "K2", (("ORIGIN", "code2"),)),
        ]
        with pytest.raises(DataGenerationError):
            normalize(flights_table, specs)

    def test_rejects_fk_name_collision_with_existing_column(self, flights_table):
        spec = DimensionSpec("d", "MONTH", (("ORIGIN", "code"),))
        with pytest.raises(DataGenerationError):
            normalize(flights_table, [spec])

    def test_rejects_role_disagreeing_on_dim_columns(self, flights_table):
        specs = [
            DimensionSpec("d", "K1", (("ORIGIN", "code"),)),
            DimensionSpec("d", "K2", (("DEST", "other"),)),
        ]
        with pytest.raises(DataGenerationError):
            normalize(flights_table, specs)


@hyp_settings(max_examples=25, deadline=None)
@given(
    labels=st.lists(
        st.sampled_from(["aa", "bb", "cc", "dd"]), min_size=2, max_size=60
    ),
)
def test_normalize_denormalize_property(labels):
    """Round-trip holds for arbitrary label/measure tables."""
    table = Table(
        "t",
        {
            "label": np.array(labels),
            "measure": np.arange(len(labels), dtype=np.int64),
        },
    )
    star = normalize(table, [DimensionSpec("dim", "L_KEY", (("label", "name"),))])
    flat = denormalize(star)
    assert np.array_equal(flat["label"], table["label"])
    assert np.array_equal(flat["measure"], table["measure"])
    assert star.tables["dim"].num_rows == len(set(labels))
