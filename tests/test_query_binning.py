"""Tests for vectorized binning and grouping."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.common.errors import QueryError
from repro.query.binning import compute_codes, group_rows
from repro.query.model import BinDimension, BinKind


class TestComputeCodes:
    def test_quantitative_floor_semantics(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=10.0, reference=0.0)
        values = np.array([-10.0, -0.1, 0.0, 9.99, 10.0, 25.0])
        codes = compute_codes(dim, values).codes
        assert list(codes) == [-1, -1, 0, 0, 1, 2]

    def test_quantitative_reference_shift(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=5.0, reference=2.0)
        codes = compute_codes(dim, np.array([2.0, 6.9, 7.0])).codes
        assert list(codes) == [0, 0, 1]

    def test_quantitative_decode_is_identity(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=1.0)
        result = compute_codes(dim, np.array([3.5]))
        assert result.decode(result.codes[0]) == 3

    def test_unresolved_dimension_rejected(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, bin_count=10)
        with pytest.raises(QueryError, match="unresolved"):
            compute_codes(dim, np.array([1.0]))

    def test_quantitative_on_strings_rejected(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=1.0)
        with pytest.raises(QueryError):
            compute_codes(dim, np.array(["a"]))

    def test_nominal_codes_and_decode(self):
        dim = BinDimension("c", BinKind.NOMINAL)
        result = compute_codes(dim, np.array(["b", "a", "b"]))
        decoded = [result.decode(code) for code in result.codes]
        assert decoded == ["b", "a", "b"]


class TestGroupRows:
    def test_1d_grouping(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=10.0)
        grouped = group_rows([dim], [np.array([5.0, 15.0, 5.0, 25.0])])
        assert grouped.num_groups == 3
        assert set(grouped.keys) == {(0,), (1,), (2,)}
        # inverse maps every row to its key
        for row, g in enumerate(grouped.inverse):
            assert grouped.keys[g] in {(0,), (1,), (2,)}

    def test_2d_grouping_mixed_kinds(self):
        dims = [
            BinDimension("v", BinKind.QUANTITATIVE, width=10.0),
            BinDimension("c", BinKind.NOMINAL),
        ]
        grouped = group_rows(
            dims,
            [np.array([5.0, 5.0, 15.0]), np.array(["x", "y", "x"])],
        )
        assert set(grouped.keys) == {(0, "x"), (0, "y"), (1, "x")}

    def test_negative_codes_pack_correctly(self):
        dims = [
            BinDimension("a", BinKind.QUANTITATIVE, width=1.0),
            BinDimension("b", BinKind.QUANTITATIVE, width=1.0),
        ]
        grouped = group_rows(
            dims,
            [np.array([-5.0, -5.0, 3.0]), np.array([-2.0, 7.0, -2.0])],
        )
        assert set(grouped.keys) == {(-5, -2), (-5, 7), (3, -2)}

    def test_empty_rows(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=1.0)
        grouped = group_rows([dim], [np.array([])])
        assert grouped.num_groups == 0
        assert len(grouped.inverse) == 0

    def test_dimension_count_mismatch(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=1.0)
        with pytest.raises(QueryError):
            group_rows([dim, dim], [np.array([1.0])])


@hyp_settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.floats(-1000, 1000), min_size=1, max_size=80),
    width=st.floats(0.5, 100),
    reference=st.floats(-50, 50),
)
def test_partition_invariant(values, width, reference):
    """Property: binning partitions rows — every row in exactly one bin,
    and the bin's interval contains the value."""
    dim = BinDimension("v", BinKind.QUANTITATIVE, width=width, reference=reference)
    array = np.array(values)
    grouped = group_rows([dim], [array])
    assert len(grouped.inverse) == len(values)
    counts = np.bincount(grouped.inverse, minlength=grouped.num_groups)
    assert counts.sum() == len(values)
    for value, g in zip(values, grouped.inverse):
        index = grouped.keys[g][0]
        low, high = dim.bin_interval(index)
        # Allow float rounding on both interval edges: floor((x-ref)/w) can
        # land a boundary value in either adjacent bin.
        epsilon = 1e-9 * max(1.0, abs(low), abs(high), abs(value))
        assert low - epsilon <= value < high + epsilon


@hyp_settings(max_examples=40, deadline=None)
@given(
    labels=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60)
)
def test_nominal_group_counts_match_value_counts(labels):
    """Property: nominal grouping reproduces value_counts exactly."""
    dim = BinDimension("c", BinKind.NOMINAL)
    array = np.array(labels)
    grouped = group_rows([dim], [array])
    counts = np.bincount(grouped.inverse, minlength=grouped.num_groups)
    for key, count in zip(grouped.keys, counts):
        assert count == sum(1 for label in labels if label == key[0])
