"""Tests for ASCII report plotting."""

import math

import pytest

from repro.bench.plotting import ascii_bars, ascii_cdf, ascii_series
from repro.common.errors import BenchmarkError


class TestAsciiCdf:
    def test_renders_grid_with_axes(self):
        points = [(x / 10, min(1.0, x / 10 + 0.1)) for x in range(11)]
        text = ascii_cdf(points, width=40, height=8, title="cdf")
        lines = text.splitlines()
        assert lines[0] == "cdf"
        assert any("100%" in line for line in lines)
        assert "*" in text
        assert "+" + "-" * 40 in text

    def test_monotone_curve_occupies_increasing_rows(self):
        points = [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)]
        text = ascii_cdf(points, width=30, height=10)
        rows_with_star = [
            i for i, line in enumerate(text.splitlines()) if "*" in line
        ]
        assert len(rows_with_star) == 3  # three distinct levels

    def test_nan_data_notes_empty_plot(self):
        text = ascii_cdf([(0.0, float("nan"))], title="t")
        assert "undefined" in text

    def test_rejects_tiny_canvas(self):
        with pytest.raises(BenchmarkError):
            ascii_cdf([(0, 1)], width=3, height=1)


class TestAsciiSeries:
    def test_legend_and_marks(self):
        series = {
            "alpha": [(1.0, 10.0), (2.0, 5.0)],
            "beta": [(1.0, 2.0), (2.0, 8.0)],
        }
        text = ascii_series(series, width=30, height=8, title="s")
        assert "* = alpha" in text
        assert "o = beta" in text
        assert "*" in text and "o" in text

    def test_nan_points_skipped(self):
        series = {"only": [(1.0, float("nan")), (2.0, 3.0)]}
        text = ascii_series(series, width=20, height=6)
        assert "*" in text

    def test_all_nan_noted(self):
        text = ascii_series({"x": [(1.0, float("nan"))]})
        assert "no finite data" in text

    def test_rejects_empty_or_too_many(self):
        with pytest.raises(BenchmarkError):
            ascii_series({})
        too_many = {f"s{i}": [(0.0, 1.0)] for i in range(9)}
        with pytest.raises(BenchmarkError):
            ascii_series(too_many)


class TestAsciiBars:
    def test_bar_lengths_proportional(self):
        text = ascii_bars({"a": 1.0, "b": 2.0}, width=20)
        line_a, line_b = text.splitlines()
        assert line_b.count("█") == 2 * line_a.count("█")

    def test_values_printed(self):
        text = ascii_bars({"x": 0.25}, fmt="{:.2f}")
        assert "0.25" in text

    def test_zero_values_ok(self):
        text = ascii_bars({"x": 0.0, "y": 0.0})
        assert "█" not in text

    def test_rejects_negative_and_nan(self):
        with pytest.raises(BenchmarkError):
            ascii_bars({"x": -1.0})
        with pytest.raises(BenchmarkError):
            ascii_bars({"x": float("nan")})
        with pytest.raises(BenchmarkError):
            ascii_bars({})
