"""Incremental prefix aggregation ≡ from-scratch, at every poll.

``PrefixKernelRun`` answers poll *n* by folding only the delta rows since
the previous poll into a running accumulator (rebuilding from scratch on
shrinking prefixes and rotation wraps). Its contract is bitwise equality
with a from-scratch evaluation of the same prefix at **every** poll —
this module drives randomized poll schedules (growing, repeated,
shrinking, wrap-crossing) against that contract, both on the raw
``PrefixKernelRun`` API and through the progressive engine (including
cancel-then-reissue reuse and ``workflow_start`` cache clears).
"""

from __future__ import annotations

import random
import struct

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.engines.cost import PROGRESSIVE_FIRST_QUERY_PENALTY
from repro.engines.estimators import srs_estimate
from repro.engines.kernel_cache import (
    clear_kernel_cache,
    get_kernel,
    kernels_enabled,
    set_kernels_enabled,
)
from repro.engines.onlineagg import OnlineAggEngine
from repro.engines.progressive import ProgressiveEngine
from repro.query.groundtruth import compute_grouped_stats
from repro.query.kernels import PrefixKernelRun
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind


# ----------------------------------------------------------------------
# Exact-equality helpers (bit patterns, so NaN payloads and ±0 count too)
# ----------------------------------------------------------------------
def _bits(value: float) -> bytes:
    return struct.pack("<d", float(value))


def assert_stats_equal(fast, naive):
    assert fast.keys == naive.keys
    assert fast.counts.dtype == naive.counts.dtype
    assert fast.counts.tobytes() == naive.counts.tobytes()
    assert fast.rows_aggregated == naive.rows_aggregated
    assert fast.rows_scanned == naive.rows_scanned
    for name in ("sums", "sumsqs", "mins", "maxs"):
        fast_dict = getattr(fast, name)
        naive_dict = getattr(naive, name)
        assert sorted(fast_dict) == sorted(naive_dict)
        for j in naive_dict:
            assert fast_dict[j].dtype == naive_dict[j].dtype, (name, j)
            assert fast_dict[j].tobytes() == naive_dict[j].tobytes(), (name, j)


def assert_results_equal(fast, naive):
    """QueryResult equality down to bit patterns (margins may hold None)."""
    assert fast.query == naive.query
    assert fast.rows_processed == naive.rows_processed
    assert fast.exact == naive.exact
    assert _bits(fast.fraction) == _bits(naive.fraction)
    for fast_map, naive_map in ((fast.values, naive.values), (fast.margins, naive.margins)):
        assert fast_map.keys() == naive_map.keys()
        for key, naive_row in naive_map.items():
            fast_row = fast_map[key]
            assert len(fast_row) == len(naive_row)
            for a, b in zip(fast_row, naive_row):
                if a is None or b is None:
                    assert a is None and b is None, (key, a, b)
                else:
                    assert _bits(a) == _bits(b), (key, a, b)


def _rotation_slice(permutation: np.ndarray, offset: int, n: int) -> np.ndarray:
    rows = len(permutation)
    end = offset + n
    if end <= rows:
        return permutation[offset:end]
    return np.concatenate([permutation[offset:], permutation[: end - rows]])


@pytest.fixture
def filtered_query():
    """A 2-D filtered query with a MIN/MAX mix (the hardest stats shape)."""
    from repro.query.filters import RangePredicate

    return AggQuery(
        table="flights",
        bins=(
            BinDimension("MONTH", BinKind.QUANTITATIVE, width=2.0),
            BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),
        ),
        aggregates=(
            Aggregate(AggFunc.COUNT),
            Aggregate(AggFunc.SUM, "DISTANCE"),
            Aggregate(AggFunc.MIN, "ARR_DELAY"),
            Aggregate(AggFunc.MAX, "ARR_DELAY"),
        ),
        filter=RangePredicate("DEP_DELAY", -20.0, 120.0),
    )


# ----------------------------------------------------------------------
# Raw PrefixKernelRun schedules
# ----------------------------------------------------------------------
class TestPrefixKernelRunSchedules:
    def _check_schedule(self, dataset, query, offset, schedule):
        kernel = get_kernel(dataset, query)
        assert kernel is not None and kernel.supports_incremental
        permutation = np.random.default_rng(23).permutation(dataset.num_fact_rows)
        run = PrefixKernelRun(kernel, permutation, offset)
        for n in schedule:
            incremental = run.poll(n)
            indices = _rotation_slice(permutation, offset, n)
            assert_stats_equal(incremental, kernel.evaluate(indices))
            assert_stats_equal(
                incremental, compute_grouped_stats(dataset, query, indices)
            )
            assert run.polled_n == n

    def test_randomized_schedules(
        self, flights_dataset, carrier_count_query, delay_avg_query, filtered_query
    ):
        rows = flights_dataset.num_fact_rows
        for seed, query in enumerate(
            (carrier_count_query, delay_avg_query, filtered_query)
        ):
            rng = random.Random(1000 + seed)
            for trial in range(6):
                offset = rng.randrange(rows)
                schedule = [rng.randrange(rows + 1) for _ in range(12)]
                # Mix in pathological steps: repeats, full table, zero.
                schedule[3] = schedule[2]
                schedule.append(rows)
                schedule.append(0)
                self._check_schedule(flights_dataset, query, offset, schedule)

    def test_monotone_growth_never_rebuilds(self, flights_dataset, delay_avg_query):
        kernel = get_kernel(flights_dataset, delay_avg_query)
        permutation = np.random.default_rng(5).permutation(flights_dataset.num_fact_rows)
        run = PrefixKernelRun(kernel, permutation, offset=0)
        for n in (10, 10, 500, 2000, flights_dataset.num_fact_rows):
            stats = run.poll(n)
            assert stats.rows_aggregated <= n
        assert run.rebuilds == 0

    def test_wrap_crossing_rebuilds_and_matches(self, flights_dataset, filtered_query):
        rows = flights_dataset.num_fact_rows
        kernel = get_kernel(flights_dataset, filtered_query)
        permutation = np.random.default_rng(9).permutation(rows)
        offset = rows - 7  # the 3 -> 9 delta straddles the permutation end
        run = PrefixKernelRun(kernel, permutation, offset)
        for n in (3, 9, 15, rows // 2, rows):
            incremental = run.poll(n)
            indices = _rotation_slice(permutation, offset, n)
            assert_stats_equal(
                incremental, compute_grouped_stats(flights_dataset, filtered_query, indices)
            )
        # Exactly one scratch rebuild: the wrap itself; later deltas are
        # contiguous past-the-boundary slices and continue incrementally.
        assert run.rebuilds == 1

    def test_shrinking_prefix_rebuilds_and_matches(self, flights_dataset, delay_avg_query):
        rows = flights_dataset.num_fact_rows
        kernel = get_kernel(flights_dataset, delay_avg_query)
        permutation = np.random.default_rng(13).permutation(rows)
        run = PrefixKernelRun(kernel, permutation, offset=100)
        run.poll(4000)
        rebuilds_before = run.rebuilds
        shrunk = run.poll(1500)
        assert run.rebuilds == rebuilds_before + 1
        indices = _rotation_slice(permutation, 100, 1500)
        assert_stats_equal(
            shrunk, compute_grouped_stats(flights_dataset, delay_avg_query, indices)
        )


# ----------------------------------------------------------------------
# Engine-level: progressive polls, reuse, workflow clears
# ----------------------------------------------------------------------
@pytest.fixture
def engine(flights_dataset, tiny_settings):
    engine = ProgressiveEngine(flights_dataset, tiny_settings, VirtualClock())
    engine.prepare()
    engine.workflow_start()
    return engine


def _run_to(engine, t):
    engine.clock.advance_to(t)
    engine.advance_to(t)


def _naive_result(engine, query, n):
    """What the uncompiled path would answer for a prefix of size ``n``."""
    from repro.common.rng import derive_seed
    from repro.query.model import QueryResult

    offset = (
        derive_seed(engine.settings.seed, engine.name, "rotation", query)
        % engine.actual_rows
    )
    indices = _rotation_slice(engine._permutation, offset, n)
    stats = compute_grouped_stats(engine.dataset, query, indices)
    values, margins = srs_estimate(
        stats, n, engine.actual_rows, engine.settings.confidence_level
    )
    return QueryResult(
        query=query,
        values=values,
        margins=margins,
        rows_processed=n,
        fraction=n / engine.actual_rows,
        exact=(n >= engine.actual_rows),
    )


class TestEngineIncremental:
    def test_progressive_polls_match_naive(self, engine, filtered_query):
        assert kernels_enabled()
        start = engine.clock.now()
        handle = engine.submit(filtered_query)
        for dt in (0.4, 0.9, 0.9, 1.6, 3.0, 8.0):
            _run_to(engine, start + dt)
            result = engine.result_at(handle, start + dt)
            if result is None:
                continue
            assert_results_equal(
                result, _naive_result(engine, filtered_query, result.rows_processed)
            )

    def test_cancel_then_reissue_reuses_kernel_run(self, engine, delay_avg_query):
        start = engine.clock.now()
        handle = engine.submit(delay_avg_query)
        _run_to(engine, start + 1.0)
        first = engine.result_at(handle, start + 1.0)
        engine.cancel(handle)
        run = engine._kernel_runs[delay_avg_query]

        # Re-issue: the same PrefixKernelRun continues from where it was.
        again = engine.submit(delay_avg_query)
        _run_to(engine, start + 2.5)
        second = engine.result_at(again, start + 2.5)
        assert engine._kernel_runs[delay_avg_query] is run
        assert second.rows_processed >= first.rows_processed  # reuse head start
        assert_results_equal(
            second, _naive_result(engine, delay_avg_query, second.rows_processed)
        )
        engine.cancel(again)

    def test_workflow_start_clears_and_stays_equivalent(self, engine, filtered_query):
        start = engine.clock.now()
        handle = engine.submit(filtered_query)
        _run_to(engine, start + 2.0)
        engine.result_at(handle, start + 2.0)
        engine.cancel(handle)
        assert filtered_query in engine._kernel_runs

        engine.workflow_start()
        assert engine._kernel_runs == {}

        # Post-clear polls rebuild from scratch, still bitwise-equivalent.
        start = engine.clock.now()
        handle = engine.submit(filtered_query)
        _run_to(engine, start + 1.2)
        result = engine.result_at(handle, start + 1.2)
        assert result is not None
        assert_results_equal(
            result, _naive_result(engine, filtered_query, result.rows_processed)
        )
        engine.cancel(handle)

    def test_kernels_disabled_bitwise_identical_results(
        self, flights_dataset, tiny_settings, filtered_query
    ):
        """The A/B switch: an engine with kernels off answers identically."""

        def drive():
            engine = ProgressiveEngine(flights_dataset, tiny_settings, VirtualClock())
            engine.prepare()
            engine.workflow_start()
            start = engine.clock.now()
            handle = engine.submit(filtered_query)
            results = []
            for dt in (0.7 + PROGRESSIVE_FIRST_QUERY_PENALTY, 2.1, 5.0):
                _run_to(engine, start + dt)
                results.append(engine.result_at(handle, start + dt))
            return results

        clear_kernel_cache()
        fast = drive()
        previous = set_kernels_enabled(False)
        try:
            slow = drive()
        finally:
            set_kernels_enabled(previous)
        assert any(result is not None for result in fast)
        for a, b in zip(fast, slow):
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert_results_equal(a, b)

    def test_onlineagg_polls_match_naive(
        self, flights_dataset, tiny_settings, carrier_count_query
    ):
        # XDB is only online for single COUNT/SUM aggregates; others take
        # the blocking-exact fallback, which never touches kernel runs.
        engine = OnlineAggEngine(flights_dataset, tiny_settings, VirtualClock())
        engine.prepare()
        engine.workflow_start()
        start = engine.clock.now()
        handle = engine.submit(carrier_count_query)
        saw_result = False
        for dt in (0.5, 1.4, 3.5, 9.0):
            _run_to(engine, start + dt)
            result = engine.result_at(handle, start + dt)
            if result is None:
                continue
            saw_result = True
            assert_results_equal(
                result, _naive_result(engine, carrier_count_query, result.rows_processed)
            )
        assert saw_result
