"""Tests for the progressive engine (IDEA stand-in): polling at any time,
convergence to exact, result reuse, speculation, warm-up penalty."""

import numpy as np
import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import EngineError
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.engines.cost import PROGRESSIVE_FIRST_QUERY_PENALTY
from repro.engines.progressive import ProgressiveEngine
from repro.query.groundtruth import evaluate_exact


@pytest.fixture
def engine(flights_dataset, tiny_settings):
    engine = ProgressiveEngine(flights_dataset, tiny_settings, VirtualClock())
    engine.prepare()
    engine.workflow_start()
    return engine


def _run_to(engine, t):
    engine.clock.advance_to(t)
    engine.advance_to(t)


def _warm(engine, query):
    """Burn the first-query penalty so tests see steady-state behaviour."""
    handle = engine.submit(query)
    _run_to(engine, engine.clock.now() + PROGRESSIVE_FIRST_QUERY_PENALTY + 0.2)
    engine.cancel(handle)
    return engine


class TestProgressivePolling:
    def test_early_poll_returns_partial_result(self, engine, carrier_count_query):
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        handle = engine.submit(carrier_count_query)
        _run_to(engine, start + 0.5)
        result = engine.result_at(handle, start + 0.5)
        assert result is not None
        assert not result.exact
        assert 0 < result.fraction < 1

    def test_quality_improves_with_time(self, engine, carrier_count_query,
                                        flights_oracle):
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        handle = engine.submit(carrier_count_query)
        truth = flights_oracle.answer(carrier_count_query)
        fractions, errors = [], []
        for dt in (0.3, 1.0, 3.0):
            _run_to(engine, start + dt)
            result = engine.result_at(handle, start + dt)
            fractions.append(result.fraction)
            diffs = [
                abs(result.values[k][0] - truth.values[k][0]) / truth.values[k][0]
                for k in result.values
                if k in truth.values and truth.values[k][0] > 0
            ]
            errors.append(np.mean(diffs))
        assert fractions == sorted(fractions)
        assert errors[-1] <= errors[0]

    def test_converges_to_exact(self, engine, carrier_count_query,
                                flights_dataset):
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        handle = engine.submit(carrier_count_query)
        _run_to(engine, start + 500.0)
        result = engine.result_at(handle, start + 500.0)
        assert result.exact
        expected = evaluate_exact(flights_dataset, carrier_count_query)
        for key, row in expected.values.items():
            assert result.values[key] == pytest.approx(row)

    def test_margins_present_and_shrinking(self, engine, delay_avg_query):
        _warm(engine, delay_avg_query)
        start = engine.clock.now()
        handle = engine.submit(delay_avg_query)
        _run_to(engine, start + 0.4)
        early = engine.result_at(handle, start + 0.4)
        _run_to(engine, start + 4.0)
        late = engine.result_at(handle, start + 4.0)
        shared = [
            k for k in early.values
            if k in late.values
            and early.margins[k][0] is not None
            and late.margins[k][0] is not None
        ]
        assert shared
        early_margin = np.mean([early.margins[k][0] for k in shared])
        late_margin = np.mean([late.margins[k][0] for k in shared])
        assert late_margin < early_margin

    def test_result_at_historical_time(self, engine, carrier_count_query):
        """Polling a past time returns what was visible then."""
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        handle = engine.submit(carrier_count_query)
        _run_to(engine, start + 5.0)
        early = engine.result_at(handle, start + 0.5)
        late = engine.result_at(handle, start + 5.0)
        assert early.rows_processed < late.rows_processed


class TestWarmUpPenalty:
    def test_first_query_delayed(self, flights_dataset, tiny_settings):
        engine = ProgressiveEngine(flights_dataset, tiny_settings, VirtualClock())
        engine.prepare()
        engine.workflow_start()
        handle = engine.submit(flights_dataset and _simple_query())
        probe = PROGRESSIVE_FIRST_QUERY_PENALTY * 0.8
        _run_to(engine, probe)
        assert engine.result_at(handle, probe) is None  # still warming up
        _run_to(engine, PROGRESSIVE_FIRST_QUERY_PENALTY + 0.5)
        assert engine.result_at(handle, PROGRESSIVE_FIRST_QUERY_PENALTY + 0.5)

    def test_second_query_not_delayed(self, engine, carrier_count_query):
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        handle = engine.submit(carrier_count_query)
        _run_to(engine, start + 0.3)
        assert engine.result_at(handle, start + 0.3) is not None

    def test_workflow_start_does_not_rearm_penalty(self, engine,
                                                   carrier_count_query):
        _warm(engine, carrier_count_query)
        engine.workflow_end()
        engine.workflow_start()
        start = engine.clock.now()
        handle = engine.submit(carrier_count_query)
        _run_to(engine, start + 0.3)
        assert engine.result_at(handle, start + 0.3) is not None


class TestResultReuse:
    def test_reissued_query_resumes(self, engine, carrier_count_query):
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        first = engine.submit(carrier_count_query)
        _run_to(engine, start + 2.0)
        first_result = engine.result_at(first, start + 2.0)
        engine.cancel(first)

        second = engine.submit(carrier_count_query)
        t = engine.clock.now() + 0.2
        _run_to(engine, t)
        resumed = engine.result_at(second, t)
        # 0.2s alone would give far fewer rows than the reused 2.0s sample.
        assert resumed.rows_processed >= first_result.rows_processed

    def test_reuse_cleared_between_workflows(self, engine, carrier_count_query):
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        first = engine.submit(carrier_count_query)
        _run_to(engine, start + 2.0)
        engine.cancel(first)
        engine.workflow_end()
        engine.workflow_start()

        second = engine.submit(carrier_count_query)
        t = engine.clock.now() + 0.2
        _run_to(engine, t)
        fresh = engine.result_at(second, t)
        assert fresh.fraction < 0.5  # no resumed sample

    def test_different_query_does_not_reuse(self, engine, carrier_count_query,
                                            delay_avg_query):
        _warm(engine, carrier_count_query)
        start = engine.clock.now()
        first = engine.submit(carrier_count_query)
        _run_to(engine, start + 2.0)
        engine.cancel(first)
        other = engine.submit(delay_avg_query)
        t = engine.clock.now() + 0.2
        _run_to(engine, t)
        result = engine.result_at(other, t)
        assert result.fraction < 0.5


class TestSpeculation:
    def test_disabled_by_default(self, engine, carrier_count_query):
        engine.link_vizs([carrier_count_query])
        assert engine.speculative_tuples(carrier_count_query) == 0

    def test_speculative_queries_accumulate_during_idle(
        self, flights_dataset, tiny_settings, carrier_count_query
    ):
        engine = ProgressiveEngine(
            flights_dataset, tiny_settings, VirtualClock(), speculation=True
        )
        engine.prepare()
        engine.workflow_start()
        engine.link_vizs([carrier_count_query])
        _run_to(engine, 5.0)
        assert engine.speculative_tuples(carrier_count_query) > 0

    def test_matching_submit_consumes_speculation(
        self, flights_dataset, tiny_settings, carrier_count_query
    ):
        engine = ProgressiveEngine(
            flights_dataset, tiny_settings, VirtualClock(), speculation=True
        )
        engine.prepare()
        engine.workflow_start()
        engine.link_vizs([carrier_count_query])
        _run_to(engine, 8.0)
        accumulated = engine.speculative_tuples(carrier_count_query)
        assert accumulated > 0
        handle = engine.submit(carrier_count_query)
        _run_to(engine, 8.0 + 0.05)
        result = engine.result_at(handle, 8.0 + 0.05)
        assert result is not None
        assert result.rows_processed >= accumulated
        # Speculative task consumed.
        assert engine.speculative_tuples(carrier_count_query) == 0

    def test_longer_think_time_means_more_speculation(
        self, flights_dataset, tiny_settings, carrier_count_query, delay_avg_query
    ):
        def accumulated_after(idle):
            engine = ProgressiveEngine(
                flights_dataset, tiny_settings, VirtualClock(), speculation=True
            )
            engine.prepare()
            engine.workflow_start()
            engine.link_vizs([carrier_count_query, delay_avg_query])
            _run_to(engine, idle)
            return engine.speculative_tuples(carrier_count_query)

        assert accumulated_after(8.0) > accumulated_after(1.0)


class TestConstraints:
    def test_rejects_normalized_dataset(self, flights_table, tiny_settings):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        with pytest.raises(EngineError, match="joins"):
            ProgressiveEngine(star, tiny_settings, VirtualClock())

    def test_capabilities(self, engine):
        assert engine.capabilities.progressive
        assert engine.capabilities.returns_margins
        assert not engine.capabilities.supports_joins


def _simple_query():
    from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind

    return AggQuery(
        "flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )
