"""Observability layer: two-axis contract, metrics fixpoint, helpers.

The load-bearing guarantees (docs/observability.md):

* switching tracing ON changes **no** report or wire-transcript bytes —
  the golden corpus must rebuild byte-identically under ``observed()``;
* the virtual-time projection of a trace is deterministic for a fixed
  seed, so ``repro trace summary`` output never varies across runs;
* a metrics snapshot is a fixpoint under encode→decode→encode (the
  STATS message round trip loses nothing), fuzzed over seeded random
  registries;
* the clock/log satellites behave: ``perf_seconds`` is swappable, the
  structured logger renders stable ``key=value`` fields.
"""

import importlib.util
import io
import json
import logging
import random
import sys
from pathlib import Path

import pytest

from repro.common import log as replog
from repro.common.clock import perf_seconds, set_perf_source
from repro.common.errors import BenchmarkError, ConfigurationError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    RingBuffer,
    StageProfiler,
    Tracer,
    get_metrics,
    get_profiler,
    get_tracer,
    observed,
    stats_payload,
)
from repro.obs.sink import (
    csv_summary,
    entry_line,
    iter_jsonl,
    summarize,
    virtual_view,
    write_jsonl,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_golden_obs", REPO_ROOT / "tools" / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regen_golden_obs", module)
    spec.loader.exec_module(module)
    return module


regen = _load_regen()


# ----------------------------------------------------------------------
# The acceptance property: tracing changes no pinned bytes
# ----------------------------------------------------------------------

class TestTracingChangesNoBytes:
    @pytest.mark.parametrize(
        "name",
        [
            "serial_run.csv",
            "server_shared.txt",
            "adaptive_markov.txt",
            "open_churn.txt",
            "tcp_session.txt",
            "tcp_shared.txt",
        ],
    )
    def test_golden_files_identical_with_tracing_enabled(self, server_ctx, name):
        golden = (GOLDEN_DIR / name).read_bytes()
        with observed(enabled=True):
            rebuilt = regen.GOLDEN_CASES[name](server_ctx).encode("utf-8")
        assert rebuilt == golden, (
            f"{name} changed with tracing enabled — observability must "
            f"never perturb pinned output"
        )

    def test_disabled_instruments_record_nothing(self):
        tracer = get_tracer()
        metrics = get_metrics()
        profiler = get_profiler()
        assert not tracer.enabled
        assert not profiler.enabled
        assert list(tracer.entries()) == []
        assert metrics.snapshot()["metrics"] == []


# ----------------------------------------------------------------------
# Virtual-time determinism of summaries
# ----------------------------------------------------------------------

class TestTraceSummaryDeterminism:
    def test_summary_of_rebuilt_trace_matches_golden(self, server_ctx):
        golden_entries = list(iter_jsonl(GOLDEN_DIR / "trace_serial.jsonl"))
        rebuilt = regen.case_trace_serial(server_ctx)
        rebuilt_entries = [
            json.loads(line) for line in rebuilt.splitlines() if line
        ]
        assert csv_summary(rebuilt_entries) == csv_summary(golden_entries)

    def test_wall_fields_are_segregated_and_stripped(self):
        tracer = Tracer(enabled=True)
        span = tracer.span("s", 1.5, session="x")
        span.end(2.0)
        span.close()
        [entry] = list(tracer.entries())
        assert "wall" in entry and "dur" in entry["wall"]
        clean = virtual_view(entry)
        assert "wall" not in clean
        assert clean["vt"] == 1.5 and clean["vt_end"] == 2.0
        # The pinned line is the canonical JSON of the clean projection.
        assert '"wall"' not in entry_line(entry, virtual_only=True)
        assert '"wall"' in entry_line(entry)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.event("a", 0.0, session="s", n=1)
        tracer.event("b", 1.0)
        path = tmp_path / "t.jsonl"
        assert write_jsonl(path, tracer.entries()) == 2
        back = list(iter_jsonl(path))
        assert [e["name"] for e in back] == ["a", "b"]

    def test_summarize_aggregates_span_durations(self):
        entries = [
            {"name": "q", "kind": "span", "vt": 1.0, "vt_end": 3.0},
            {"name": "q", "kind": "span", "vt": 5.0, "vt_end": 6.0},
        ]
        [row] = summarize(entries)
        assert row["count"] == 2
        assert row["vt_total"] == pytest.approx(3.0)
        assert row["vt_first"] == 1.0 and row["vt_last"] == 5.0


# ----------------------------------------------------------------------
# Metrics snapshot fixpoint (seeded fuzz)
# ----------------------------------------------------------------------

class TestMetricsSnapshotFixpoint:
    @pytest.mark.parametrize("seed", range(8))
    def test_encode_decode_encode_is_fixpoint(self, seed):
        rng = random.Random(seed)
        registry = MetricsRegistry()
        for i in range(rng.randint(1, 12)):
            kind = rng.choice(["counter", "gauge", "histogram"])
            labels = (
                {"k": f"v{rng.randint(0, 3)}"} if rng.random() < 0.5 else None
            )
            name = f"m_{kind}_{i % 4}"
            if kind == "counter":
                registry.counter(name, labels=labels).inc(rng.random() * 10)
            elif kind == "gauge":
                registry.gauge(name, labels=labels).set(rng.uniform(-5, 5))
            else:
                h = registry.histogram(
                    name, labels=labels, bounds=DEFAULT_TIME_BUCKETS
                )
                for _ in range(rng.randint(0, 20)):
                    h.observe(rng.random() * 20)
        once = registry.snapshot_json()
        decoded = MetricsRegistry.from_snapshot(json.loads(once))
        assert decoded.snapshot_json() == once

    def test_prometheus_rendering_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"b": "2"}).inc()
        registry.counter("c", labels={"a": "1"}).inc(3)
        registry.histogram("h", bounds=[0.1, 1.0]).observe(0.5)
        assert registry.render_prometheus() == registry.render_prometheus()
        text = registry.render_prometheus()
        assert 'le="+Inf"' in text and "h_count 1" in text

    def test_prometheus_histogram_exposition_format_pinned(self):
        # Format pin: cumulative buckets, the +Inf bucket, and the
        # _sum/_count lines — exactly what scrapers parse. Any drift
        # here silently breaks downstream dashboards.
        registry = MetricsRegistry()
        h = registry.histogram(
            "h", bounds=[0.1, 1.0], help="Answered-query latency."
        )
        h.observe(0.05)
        h.observe(0.5)
        h.observe(99.0)
        assert registry.render_prometheus() == (
            "# HELP h Answered-query latency.\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 99.55\n"
            "h_count 3\n"
        )

    def test_stats_payload_shape(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        profiler = StageProfiler(enabled=True)
        profiler.add("stage_a", 0.25, count=2)
        payload = stats_payload(registry, profiler)
        assert payload["trace_schema"] == 1
        assert {s["name"] for s in payload["profile"]["stages"]} == {"stage_a"}
        names = {m["name"] for m in payload["metrics"]["metrics"]}
        assert "repro_stage_wall_seconds_total" in names


# ----------------------------------------------------------------------
# Ring buffer and observed()
# ----------------------------------------------------------------------

class TestSinks:
    def test_ring_buffer_keeps_newest_and_counts_drops(self):
        ring = RingBuffer(3)
        for i in range(10):
            ring.append({"i": i})
        assert len(ring) == 3
        assert [e["i"] for e in ring] == [7, 8, 9]
        assert ring.dropped == 7

    def test_ring_buffer_rejects_nonpositive_capacity(self):
        with pytest.raises(BenchmarkError):
            RingBuffer(0)

    def test_bounded_tracer_drops_oldest(self):
        tracer = Tracer(enabled=True, capacity=2)
        for i in range(5):
            tracer.event(f"e{i}", float(i))
        assert [e["name"] for e in tracer.entries()] == ["e3", "e4"]
        assert tracer.dropped == 3

    def test_observed_writes_files_and_restores_singletons(self, tmp_path):
        before = get_tracer()
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        with observed(trace_path=trace_path, metrics_path=metrics_path):
            assert get_tracer() is not before
            get_tracer().event("e", 1.0)
            get_metrics().counter("c").inc()
        assert get_tracer() is before
        assert len(list(iter_jsonl(trace_path))) == 1
        data = json.loads(metrics_path.read_text())
        assert data["trace_schema"] == 1

    def test_observed_inactive_without_paths(self):
        with observed() as tracer:
            assert not tracer.enabled


# ----------------------------------------------------------------------
# Satellites: clock + logger
# ----------------------------------------------------------------------

class TestClock:
    def test_perf_seconds_is_monotonic(self):
        a = perf_seconds()
        b = perf_seconds()
        assert b >= a

    def test_perf_source_is_swappable(self):
        ticks = iter([1.0, 3.5])
        previous = set_perf_source(lambda: next(ticks))
        try:
            assert perf_seconds() == 1.0
            assert perf_seconds() == 3.5
        finally:
            set_perf_source(previous)


class TestLog:
    def test_parse_level_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            replog.parse_level("chatty")

    def test_fields_render_sorted_and_stable(self):
        stream = io.StringIO()
        replog.configure(level="debug", stream=stream)
        try:
            logger = replog.get_logger("net.test")
            logger.warning("something odd", b=2, a="x")
        finally:
            replog.configure(stream=sys.stderr)
        line = stream.getvalue()
        assert "repro[net.test] WARNING: something odd a='x' b=2" in line

    def test_silent_suppresses_everything(self):
        stream = io.StringIO()
        replog.configure(level="silent", stream=stream)
        try:
            replog.get_logger("quiet").error("nope")
        finally:
            replog.configure(stream=sys.stderr)
        assert stream.getvalue() == ""

    def test_logger_names_are_namespaced(self):
        logger = replog.get_logger("runtime.executor")
        assert logger._logger.name == "repro.runtime.executor"
        assert logger.isEnabledFor(logging.CRITICAL)
