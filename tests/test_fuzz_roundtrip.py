"""Seeded round-trip fuzzers for the two serialization boundaries.

Two generators driven by stdlib :mod:`random` under fixed seeds:

* **SQL**: random :class:`AggQuery` → ``query_to_sql`` → ``parse_sql``
  must reach a *fixpoint* after one round — ``emit(parse(emit(q)))``
  reproduces both the statement bytes and the parsed structure. (The
  first round may legitimately canonicalize, e.g. fuse ``>=``/``<``
  comparison pairs into range predicates.)
* **Workflow specs**: random :class:`Workflow` → ``to_dict`` →
  ``from_dict`` must be the identity (dict-level equality), since the
  dict form is the benchmark's on-disk workload format.

~200 cases each; the seeds are fixed so failures reproduce exactly.
"""

import random

from repro.query.filters import (
    And,
    Comparison,
    Filter,
    Or,
    RangePredicate,
    SetPredicate,
)
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind
from repro.query.sql import query_to_sql
from repro.query.sql_parser import parse_sql
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
    Workflow,
    WorkflowType,
)

N_CASES = 200

#: Identifier pool. Upper-case names that are NOT SQL keywords (MIN/MAX
#: etc. are, and must round-trip through the tokenizer as plain idents
#: only when they aren't, so we simply avoid them).
COLUMNS = [f"C_{i}" for i in range(12)]
CATEGORIES = ["AA", "B B", "c'c", "Delta_4", "e", "F-6"]


# ----------------------------------------------------------------------
# Random builders (stdlib random only — reproducible under a fixed seed)
# ----------------------------------------------------------------------

def _number(rng: random.Random) -> float:
    if rng.random() < 0.4:
        return float(rng.randint(-1000, 1000))
    return rng.uniform(-1e4, 1e4)


def _positive(rng: random.Random) -> float:
    return abs(_number(rng)) + 0.5


def _predicate(rng: random.Random) -> Filter:
    kind = rng.randrange(3)
    field = rng.choice(COLUMNS)
    if kind == 0:
        low = _number(rng)
        if rng.random() < 0.2:
            return RangePredicate(field, low, None)
        if rng.random() < 0.2:
            return RangePredicate(field, None, low)
        return RangePredicate(field, low, low + _positive(rng))
    if kind == 1:
        values = frozenset(
            rng.sample(CATEGORIES, rng.randint(1, len(CATEGORIES)))
        )
        return SetPredicate(field, values)
    if rng.random() < 0.3:
        # String comparisons are only defined for equality operators.
        return Comparison(field, rng.choice(["=", "!="]), rng.choice(CATEGORIES))
    op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
    return Comparison(field, op, _number(rng))


def _filter(rng: random.Random, depth: int = 0) -> Filter:
    roll = rng.random()
    if depth >= 2 or roll < 0.5:
        return _predicate(rng)
    children = [_filter(rng, depth + 1) for _ in range(rng.randint(2, 3))]
    return And(*children) if roll < 0.75 else Or(*children)


def _bin_dimension(rng: random.Random, field: str) -> BinDimension:
    if rng.random() < 0.3:
        return BinDimension(field, BinKind.NOMINAL)
    return BinDimension(
        field,
        BinKind.QUANTITATIVE,
        width=_positive(rng),
        reference=_number(rng),
    )


def _aggregates(rng: random.Random):
    pool = []
    for func in AggFunc:
        if func is AggFunc.COUNT:
            pool.append(Aggregate(func))
        else:
            for field in rng.sample(COLUMNS, 2):
                pool.append(Aggregate(func, field))
    count = rng.randint(1, 3)
    chosen = rng.sample(pool, count)
    # Distinct labels are required (SELECT ... AS <label> must be unique).
    labels = [agg.label for agg in chosen]
    assert len(set(labels)) == len(labels)
    return tuple(chosen)


def _query(rng: random.Random) -> AggQuery:
    num_bins = rng.randint(1, 2)
    fields = rng.sample(COLUMNS, num_bins)
    bins = tuple(_bin_dimension(rng, field) for field in fields)
    filter_expr = _filter(rng) if rng.random() < 0.8 else None
    return AggQuery(
        table="flights",
        bins=bins,
        aggregates=_aggregates(rng),
        filter=filter_expr,
    )


def _workflow(rng: random.Random, index: int) -> Workflow:
    interactions = []
    created = []
    for step in range(rng.randint(1, 10)):
        roll = rng.random()
        if not created or roll < 0.35:
            name = f"viz_{len(created)}"
            spec = VizSpec(
                name=name,
                source="flights",
                bins=tuple(
                    _bin_dimension(rng, field)
                    for field in rng.sample(COLUMNS, rng.randint(1, 2))
                ),
                aggregates=_aggregates(rng),
            )
            interactions.append(CreateViz(spec))
            created.append(name)
        elif roll < 0.55:
            target = rng.choice(created)
            filter_expr = _filter(rng) if rng.random() < 0.8 else None
            interactions.append(SetFilter(target, filter_expr))
        elif roll < 0.75 and len(created) >= 2:
            source, target = rng.sample(created, 2)
            interactions.append(Link(source, target))
        elif roll < 0.9:
            target = rng.choice(created)
            keys = tuple(
                tuple(
                    rng.randint(-5, 20)
                    if rng.random() < 0.6
                    else rng.choice(CATEGORIES)
                    for _ in range(rng.randint(1, 2))
                )
                for _ in range(rng.randint(0, 3))
            )
            interactions.append(SelectBins(target, keys))
        else:
            interactions.append(DiscardViz(rng.choice(created)))
    workflow_type = rng.choice(list(WorkflowType))
    return Workflow(
        name=f"fuzz_{index}",
        workflow_type=workflow_type,
        interactions=tuple(interactions),
    )


# ----------------------------------------------------------------------
# The fuzzers
# ----------------------------------------------------------------------

class TestSqlRoundTrip:
    def test_parse_emit_parse_fixpoint(self):
        rng = random.Random(0xC0FFEE)
        for case in range(N_CASES):
            query = _query(rng)
            sql = query_to_sql(query)
            parsed = parse_sql(sql)
            sql_again = query_to_sql(parsed)
            parsed_again = parse_sql(sql_again)
            assert sql_again == query_to_sql(parsed_again), f"case {case}:\n{sql}"
            assert parsed_again == parsed, f"case {case}:\n{sql}"

    def test_structure_survives_where_semantics(self):
        """Bins/aggregates/table always survive the first round exactly."""
        rng = random.Random(0xBEEF)
        for case in range(N_CASES):
            query = _query(rng)
            parsed = parse_sql(query_to_sql(query))
            assert parsed.table == query.table, f"case {case}"
            assert parsed.bins == query.bins, f"case {case}"
            assert parsed.aggregates == query.aggregates, f"case {case}"
            assert (parsed.filter is None) == (query.filter is None), f"case {case}"


class TestWorkflowSpecRoundTrip:
    def test_to_dict_from_dict_identity(self):
        rng = random.Random(0xFACADE)
        for case in range(N_CASES):
            workflow = _workflow(rng, case)
            data = workflow.to_dict()
            rebuilt = Workflow.from_dict(data)
            assert rebuilt.to_dict() == data, f"case {case}"
            assert rebuilt == workflow, f"case {case}"

    def test_json_text_round_trip(self, tmp_path):
        rng = random.Random(7)
        for case in range(20):
            workflow = _workflow(rng, case)
            path = tmp_path / f"wf_{case}.json"
            workflow.to_json(path)
            assert Workflow.from_json(path) == workflow, f"case {case}"
