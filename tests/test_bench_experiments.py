"""Tests for the experiment harness (quick configurations).

These run tiny versions of every experiment and assert the *qualitative*
shapes the paper reports — the full-size reproductions live in
``benchmarks/``.
"""

import math

import numpy as np
import pytest

from repro.bench.experiments import (
    ExperimentContext,
    MAIN_ENGINES,
    exp_detailed_table,
    exp_effects,
    exp_overall,
    exp_prep_times,
    exp_schema,
    exp_system_y,
    exp_think_time,
    exp_workflow_types,
    make_engine,
    speculation_workflow,
)
from repro.common.clock import VirtualClock
from repro.common.config import BenchmarkSettings, DataSize
from repro.common.errors import BenchmarkError


@pytest.fixture(scope="module")
def ctx():
    # S → 20k actual rows; 2 workflows per type: fast but non-trivial.
    return ExperimentContext(
        BenchmarkSettings(
            data_size=DataSize.S, scale=5000, workflows_per_type=2, seed=17
        )
    )


class TestContextCaching:
    def test_dataset_cached(self, ctx):
        assert ctx.dataset(DataSize.S) is ctx.dataset(DataSize.S)

    def test_normalized_and_flat_differ(self, ctx):
        assert ctx.dataset(DataSize.S, True) is not ctx.dataset(DataSize.S, False)
        assert ctx.dataset(DataSize.S, True).is_normalized

    def test_workflows_cached_and_deterministic(self, ctx):
        from repro.workflow.spec import WorkflowType

        a = ctx.workflows(WorkflowType.MIXED, 2)
        b = ctx.workflows(WorkflowType.MIXED, 2)
        assert a is b

    def test_actual_rows_match_scale(self, ctx):
        assert ctx.dataset(DataSize.S).num_fact_rows == 100_000_000 // 5000

    def test_make_engine_rejects_unknown(self, ctx):
        with pytest.raises(BenchmarkError):
            make_engine("nonsense", ctx.dataset(DataSize.S), ctx.settings,
                        VirtualClock())


class TestOverall:
    @pytest.fixture(scope="class")
    def results(self, ctx):
        return exp_overall(
            ctx,
            engines=("monetdb-sim", "idea-sim"),
            time_requirements=(0.5, 5.0),
            workflows_per_type=2,
        )

    def test_every_cell_present(self, results):
        assert set(results.summaries) == {
            ("monetdb-sim", 0.5), ("monetdb-sim", 5.0),
            ("idea-sim", 0.5), ("idea-sim", 5.0),
        }

    def test_monetdb_improves_with_tr(self, results):
        series = dict(results.series("pct_tr_violated")["monetdb-sim"])
        assert series[5.0] <= series[0.5]

    def test_idea_rarely_violates(self, results):
        series = dict(results.series("pct_tr_violated")["idea-sim"])
        assert series[5.0] == 0.0
        assert series[0.5] < 20.0

    def test_records_kept_per_cell(self, results):
        records = results.records[("idea-sim", 0.5)]
        assert len(records) > 10


class TestWorkflowTypes:
    def test_shape(self, ctx):
        outcome = exp_workflow_types(
            ctx, engines=("idea-sim",), workflows_per_type=2,
            time_requirement=3.0,
        )
        per_type = outcome["idea-sim"]
        assert set(per_type) == {"independent", "sequential", "one_to_n", "n_to_1"}
        for value in per_type.values():
            assert 0.0 <= value <= 1.0


class TestSchema:
    def test_normalized_not_worse_for_monetdb(self, ctx):
        outcome = exp_schema(
            ctx, engines=("monetdb-sim",), sizes=(DataSize.S,),
            workflows_per_type=2, time_requirement=0.5,
        )
        denorm = outcome[("monetdb-sim", "S", "denormalized")]
        norm = outcome[("monetdb-sim", "S", "normalized")]
        assert norm <= denorm + 5.0  # normalized is (at worst marginally) better

    def test_xdb_flat_across_schemas(self, ctx):
        outcome = exp_schema(
            ctx, engines=("xdb-sim",), sizes=(DataSize.S,),
            workflows_per_type=2, time_requirement=3.0,
        )
        assert outcome[("xdb-sim", "S", "normalized")] == pytest.approx(
            outcome[("xdb-sim", "S", "denormalized")], abs=10.0
        )


class TestThinkTime:
    def test_speculation_monotone_trend(self, ctx):
        outcome = exp_think_time(ctx, think_times=(1.0, 8.0), size=DataSize.S)
        assert len(outcome) == 2
        (think_a, missing_a), (think_b, missing_b) = outcome
        assert think_a == 1.0 and think_b == 8.0
        assert missing_b <= missing_a  # more think time → fewer missing bins

    def test_speculation_workflow_structure(self, ctx):
        workflow = speculation_workflow(ctx.profiles(DataSize.S))
        assert workflow.num_interactions == 4
        dims = workflow.interactions[0].viz.bins
        assert len(dims) == 2  # 2-D histogram


class TestDetailedTable:
    def test_table1_report(self, ctx):
        report = exp_detailed_table(ctx, size=DataSize.S)
        assert len(report) > 5
        rows = report.rows()
        assert rows[0]["driver"] == "idea-sim"
        assert rows[0]["time_req"] == 0.5
        assert rows[0]["think_time"] == 3.0


class TestPrepTimes:
    def test_paper_numbers_at_500m(self):
        ctx_m = ExperimentContext(
            BenchmarkSettings(data_size=DataSize.M, scale=50_000, seed=17)
        )
        reports = exp_prep_times(ctx_m)
        assert reports["monetdb-sim"].minutes == pytest.approx(19, rel=0.1)
        assert reports["xdb-sim"].minutes == pytest.approx(130, rel=0.1)
        assert reports["idea-sim"].minutes == pytest.approx(3, rel=0.1)
        assert reports["system-x-sim"].minutes == pytest.approx(27, rel=0.15)

    def test_ordering_matches_paper(self, ctx):
        reports = exp_prep_times(ctx)
        assert (
            reports["idea-sim"].seconds
            < reports["monetdb-sim"].seconds
            < reports["system-x-sim"].seconds
            < reports["xdb-sim"].seconds
        )


class TestEffects:
    def test_factor_grouping(self, ctx):
        results = exp_overall(
            ctx, engines=("idea-sim",), time_requirements=(3.0,),
            workflows_per_type=2,
        )
        records = results.records[("idea-sim", 3.0)]
        effects = exp_effects(records)
        assert set(effects) == {
            "bin_dims", "binning_type", "agg_type", "concurrency", "selectivity"
        }
        for levels in effects.values():
            assert levels
            for stats in levels.values():
                assert stats["queries"] >= 1

    def test_selectivity_buckets_cover_records(self, ctx):
        results = exp_overall(
            ctx, engines=("monetdb-sim",), time_requirements=(1.0,),
            workflows_per_type=2,
        )
        records = results.records[("monetdb-sim", 1.0)]
        effects = exp_effects(records)
        total = sum(s["queries"] for s in effects["selectivity"].values())
        assert total == len(records)


class TestSystemY:
    def test_frontend_slower_than_backend(self, ctx):
        outcome = exp_system_y(ctx, num_variants=1, size=DataSize.S)
        monet = outcome["monetdb-sim"]
        system_y = outcome["system-y-sim"]
        assert system_y["num_queries"] == monet["num_queries"]
        if not math.isnan(system_y["mean_latency_answered"]) and not math.isnan(
            monet["mean_latency_answered"]
        ):
            delta = system_y["mean_latency_answered"] - monet["mean_latency_answered"]
            assert 0.5 <= delta <= 2.5  # the §5.6 rendering overhead
