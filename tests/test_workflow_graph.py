"""Tests for the visualization dependency graph (§2.2/§4.4 semantics)."""

import pytest

from repro.common.errors import WorkflowError
from repro.query.filters import (
    And,
    Comparison,
    Or,
    RangePredicate,
    SetPredicate,
)
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.graph import VizGraph, VizNode
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
)


def _viz(name, field="DEP_DELAY", nominal=False):
    if nominal:
        bins = (BinDimension(field, BinKind.NOMINAL),)
    else:
        bins = (BinDimension(field, BinKind.QUANTITATIVE, width=10.0),)
    return VizSpec(name=name, source="flights", bins=bins,
                   aggregates=(Aggregate(AggFunc.COUNT),))


@pytest.fixture
def graph():
    g = VizGraph()
    g.apply(CreateViz(_viz("a", "UNIQUE_CARRIER", nominal=True)))
    g.apply(CreateViz(_viz("b", "DEP_DELAY")))
    g.apply(CreateViz(_viz("c", "DISTANCE")))
    return g


class TestStructure:
    def test_create_affects_itself(self):
        g = VizGraph()
        applied = g.apply(CreateViz(_viz("x")))
        assert applied.affected == ("x",)
        assert "x" in g

    def test_duplicate_create_rejected(self, graph):
        with pytest.raises(WorkflowError):
            graph.apply(CreateViz(_viz("a")))

    def test_unknown_viz_rejected(self, graph):
        with pytest.raises(WorkflowError):
            graph.apply(SetFilter("ghost", None))

    def test_link_and_descendants(self, graph):
        graph.apply(Link("a", "b"))
        graph.apply(Link("b", "c"))
        assert graph.children("a") == ["b"]
        assert graph.parents("c") == ["b"]
        assert graph.descendants("a") == ["b", "c"]

    def test_self_link_rejected(self, graph):
        with pytest.raises(WorkflowError):
            graph.apply(Link("a", "a"))

    def test_duplicate_link_rejected(self, graph):
        graph.apply(Link("a", "b"))
        with pytest.raises(WorkflowError):
            graph.apply(Link("a", "b"))

    def test_cycle_rejected(self, graph):
        graph.apply(Link("a", "b"))
        graph.apply(Link("b", "c"))
        with pytest.raises(WorkflowError, match="cycle"):
            graph.apply(Link("c", "a"))

    def test_discard_removes_node_and_links(self, graph):
        graph.apply(Link("a", "b"))
        applied = graph.apply(DiscardViz("a"))
        assert "a" not in graph
        assert graph.parents("b") == []
        assert applied.removed == ("a",)
        assert applied.affected == ("b",)  # b lost an input → refresh


class TestUpdateSemantics:
    """Filters update source + descendants; selections only descendants."""

    def test_filter_affects_source_and_descendants(self, graph):
        graph.apply(Link("a", "b"))
        graph.apply(Link("b", "c"))
        applied = graph.apply(SetFilter("a", Comparison("MONTH", "=", 1)))
        assert applied.affected == ("a", "b", "c")

    def test_selection_affects_descendants_only(self, graph):
        graph.apply(Link("a", "b"))
        applied = graph.apply(SelectBins("a", (("AA",),)))
        assert applied.affected == ("b",)

    def test_selection_without_links_affects_nothing(self, graph):
        applied = graph.apply(SelectBins("a", (("AA",),)))
        assert applied.affected == ()

    def test_one_to_n_fanout(self, graph):
        graph.apply(Link("a", "b"))
        graph.apply(Link("a", "c"))
        applied = graph.apply(SelectBins("a", (("AA",),)))
        assert set(applied.affected) == {"b", "c"}

    def test_n_to_one_single_query(self, graph):
        graph.apply(Link("b", "a"))
        graph.apply(Link("c", "a"))
        applied = graph.apply(SelectBins("b", ((1,),)))
        assert applied.affected == ("a",)

    def test_link_triggers_target_refresh(self, graph):
        applied = graph.apply(Link("a", "b"))
        assert applied.affected == ("b",)


class TestEffectiveFilter:
    def test_own_filter_only(self, graph):
        predicate = Comparison("MONTH", "=", 3)
        graph.apply(SetFilter("b", predicate))
        assert graph.effective_filter("b") == predicate

    def test_clearing_filter(self, graph):
        graph.apply(SetFilter("b", Comparison("MONTH", "=", 3)))
        graph.apply(SetFilter("b", None))
        assert graph.effective_filter("b") is None

    def test_selection_propagates_to_target(self, graph):
        graph.apply(Link("a", "b"))
        graph.apply(SelectBins("a", (("AA",), ("BB",))))
        effective = graph.effective_filter("b")
        assert effective == SetPredicate("UNIQUE_CARRIER", frozenset(["AA", "BB"]))

    def test_upstream_filter_propagates(self, graph):
        graph.apply(Link("a", "b"))
        predicate = Comparison("MONTH", "=", 7)
        graph.apply(SetFilter("a", predicate))
        assert graph.effective_filter("b") == predicate

    def test_chain_composition(self, graph):
        graph.apply(Link("a", "b"))
        graph.apply(Link("b", "c"))
        graph.apply(SetFilter("a", Comparison("MONTH", "=", 1)))
        graph.apply(SelectBins("b", ((2,),)))
        effective = graph.effective_filter("c")
        assert isinstance(effective, And)
        # contains both the b-selection range and a's filter
        fields = effective.fields()
        assert "DEP_DELAY" in fields and "MONTH" in fields

    def test_query_for_composes_spec_and_filter(self, graph):
        graph.apply(SetFilter("c", RangePredicate("DISTANCE", 0, 100)))
        query = graph.query_for("c")
        assert query.filter == RangePredicate("DISTANCE", 0, 100)
        assert query.bins[0].field == "DISTANCE"


class TestSelectionFilters:
    def test_nominal_1d_collapses_to_set(self):
        node = VizNode(spec=_viz("v", "ORIGIN", nominal=True),
                       selection=(("AAA",), ("BBB",)))
        assert node.selection_filter() == SetPredicate(
            "ORIGIN", frozenset(["AAA", "BBB"])
        )

    def test_quantitative_selection_becomes_ranges(self):
        node = VizNode(spec=_viz("v", "DEP_DELAY"), selection=((0,), (2,)))
        selection = node.selection_filter()
        assert isinstance(selection, Or)
        assert RangePredicate("DEP_DELAY", 0.0, 10.0) in selection.children
        assert RangePredicate("DEP_DELAY", 20.0, 30.0) in selection.children

    def test_2d_selection_conjunction(self):
        spec = VizSpec(
            "v", "flights",
            bins=(
                BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=10.0),
                BinDimension("ORIGIN", BinKind.NOMINAL),
            ),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        node = VizNode(spec=spec, selection=((1, "AAA"),))
        selection = node.selection_filter()
        assert isinstance(selection, And)
        assert RangePredicate("DEP_DELAY", 10.0, 20.0) in selection.children
        assert Comparison("ORIGIN", "=", "AAA") in selection.children

    def test_empty_selection_is_none(self):
        node = VizNode(spec=_viz("v"))
        assert node.selection_filter() is None

    def test_mismatched_key_arity_rejected(self):
        node = VizNode(spec=_viz("v"), selection=((1, 2),))
        with pytest.raises(WorkflowError):
            node.selection_filter()
