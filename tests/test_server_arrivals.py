"""Non-stationary arrival tests: RateSchedule and thinned ArrivalProcess."""

import math

import pytest

from repro.common.errors import BenchmarkError
from repro.server import ArrivalProcess, RateSchedule


class TestRateSchedule:
    def test_piecewise_lookup(self):
        schedule = RateSchedule([(0.0, 0.1), (10.0, 0.5), (20.0, 0.2)])
        assert schedule.rate_at(0.0) == 0.1
        assert schedule.rate_at(9.999) == 0.1
        assert schedule.rate_at(10.0) == 0.5
        assert schedule.rate_at(15.0) == 0.5
        assert schedule.rate_at(1e9) == 0.2
        assert schedule.max_rate == 0.5

    def test_periodic_wraps(self):
        schedule = RateSchedule([(0.0, 1.0), (5.0, 2.0)], period=10.0)
        assert schedule.rate_at(0.0) == 1.0
        assert schedule.rate_at(7.0) == 2.0
        assert schedule.rate_at(12.0) == 1.0  # 12 % 10 = 2
        assert schedule.rate_at(17.0) == 2.0

    def test_diurnal_peaks_and_troughs(self):
        schedule = RateSchedule.diurnal(1.0, amplitude=0.8, period=24.0)
        quarter = schedule.rate_at(6.0)   # sin peak region
        trough = schedule.rate_at(18.0)   # sin trough region
        assert quarter > 1.5
        assert trough < 0.5
        assert schedule.rate_at(0.0) == pytest.approx(1.0)
        # periodic
        assert schedule.rate_at(30.0) == schedule.rate_at(6.0)

    def test_flash_crowd_shape(self):
        schedule = RateSchedule.flash_crowd(0.1, peak=1.0, at=20.0, width=5.0)
        assert schedule.rate_at(10.0) == 0.1
        assert schedule.rate_at(21.0) == 1.0
        assert schedule.rate_at(26.0) == 0.1

    @pytest.mark.parametrize(
        "points, period",
        [
            ([], None),
            ([(1.0, 0.5)], None),                   # must start at 0
            ([(0.0, 0.5), (0.0, 0.6)], None),       # not ascending
            ([(0.0, -0.1)], None),                  # negative rate
            ([(0.0, 0.0)], None),                   # all zero
            ([(0.0, 0.5), (5.0, 0.6)], 4.0),        # period inside points
        ],
    )
    def test_invalid_schedules_rejected(self, points, period):
        with pytest.raises(BenchmarkError):
            RateSchedule(points, period=period)

    def test_rate_at_rejects_negative_time(self):
        with pytest.raises(BenchmarkError):
            RateSchedule.constant(1.0).rate_at(-1.0)


class TestScheduleParse:
    def test_constant(self):
        schedule = RateSchedule.parse("constant", 0.3, 60.0)
        assert schedule.rate_at(10.0) == 0.3

    def test_diurnal_with_options(self):
        schedule = RateSchedule.parse(
            "diurnal:amplitude=0.5,period=40", 0.2, 60.0
        )
        assert schedule.period == 40.0
        assert schedule.max_rate <= 0.2 * 1.5 + 1e-9

    def test_flash_multiplier_and_absolute(self):
        relative = RateSchedule.parse("flash:peak=4x,at=10,width=5", 0.2, 60.0)
        assert relative.rate_at(11.0) == pytest.approx(0.8)
        absolute = RateSchedule.parse("flash:peak=0.9,at=10,width=5", 0.2, 60.0)
        assert absolute.rate_at(11.0) == pytest.approx(0.9)

    def test_piecewise(self):
        schedule = RateSchedule.parse("piecewise:0=0.1,20=0.6,40=0.1", 0.2, 60.0)
        assert schedule.rate_at(25.0) == 0.6

    @pytest.mark.parametrize(
        "spec",
        ["sideways", "diurnal:bogus=1", "flash:peak=", "piecewise:",
         "diurnal:amplitude"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(BenchmarkError):
            RateSchedule.parse(spec, 0.2, 60.0)

    def test_bad_value_error_names_the_real_problem(self):
        # A bad value must not be misreported as the *other* (valid,
        # not-yet-consumed) options being unknown.
        with pytest.raises(BenchmarkError, match="malformed arrival"):
            RateSchedule.parse("diurnal:amplitude=oops,period=30", 0.2, 60.0)
        with pytest.raises(BenchmarkError, match=r"unknown schedule option\(s\) \['bogus'\]"):
            RateSchedule.parse("diurnal:period=30,bogus=1", 0.2, 60.0)


class TestNonStationaryArrivals:
    def test_homogeneous_stream_unchanged(self):
        # schedule=None must reproduce the historical draw exactly (the
        # golden churn corpus also pins this end to end).
        a = ArrivalProcess(0.2, 40.0, seed=5, mean_residence=25.0).schedule()
        b = ArrivalProcess(0.2, 40.0, seed=5, mean_residence=25.0).schedule()
        assert [(x.arrival_time, x.departure_time) for x in a] == [
            (x.arrival_time, x.departure_time) for x in b
        ]

    def test_thinned_schedule_deterministic(self):
        def draw():
            return ArrivalProcess(
                0.2, 60.0, seed=7, mean_residence=30.0,
                rate_schedule=RateSchedule.flash_crowd(
                    0.2, peak=1.2, at=20.0, width=10.0
                ),
            ).schedule()

        a, b = draw(), draw()
        assert [(x.arrival_time, x.departure_time) for x in a] == [
            (x.arrival_time, x.departure_time) for x in b
        ]

    def test_flash_crowd_concentrates_arrivals(self):
        flat = ArrivalProcess(0.2, 300.0, seed=11).schedule()
        flash = ArrivalProcess(
            0.2, 300.0, seed=11,
            rate_schedule=RateSchedule.flash_crowd(
                0.05, peak=1.5, at=100.0, width=50.0
            ),
        ).schedule()
        in_burst = [a for a in flash if 100.0 <= a.arrival_time < 150.0]
        outside = [a for a in flash if not 100.0 <= a.arrival_time < 150.0]
        # The burst window is 1/6 of the horizon but holds most arrivals.
        assert len(in_burst) > len(outside)
        assert flat  # sanity: the flat draw produced arrivals too

    def test_zero_rate_segments_produce_no_arrivals(self):
        schedule = RateSchedule([(0.0, 0.0), (50.0, 2.0)])
        arrivals = ArrivalProcess(
            1.0, 100.0, seed=3, rate_schedule=schedule
        ).schedule()
        assert arrivals
        assert all(a.arrival_time >= 50.0 for a in arrivals)

    def test_max_sessions_caps_thinned_arrivals(self):
        arrivals = ArrivalProcess(
            1.0, 1000.0, seed=3, max_sessions=4,
            rate_schedule=RateSchedule.constant(1.0),
        ).schedule()
        assert len(arrivals) == 4

    def test_open_system_run_with_schedule(self, server_ctx):
        from repro.server import OpenSystemManager

        def run():
            arrivals = ArrivalProcess(
                0.2, 40.0, seed=server_ctx.settings.seed,
                mean_residence=25.0, max_sessions=4,
                rate_schedule=RateSchedule.flash_crowd(
                    0.2, peak=1.2, at=10.0, width=10.0
                ),
            )
            return OpenSystemManager.for_engine(
                server_ctx, "idea-sim", arrivals,
                policy="markov", per_session=1,
            ).run()

        first, second = run(), run()
        assert [r.csv_text() for r in first] == [r.csv_text() for r in second]
        assert math.isfinite(sum(r.num_queries for r in first))
