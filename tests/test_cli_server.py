"""CLI tests for the session-server subcommands (serve, bench-sessions)."""

import pytest

from repro.cli import main

#: Small-but-honest configuration shared by all CLI invocations here.
COMMON = ["--size", "S", "--scale", "50000", "--seed", "5", "--tr", "1"]


class TestServe:
    def test_serve_verify_and_out(self, tmp_path, capsys):
        out_dir = tmp_path / "sessions"
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--verify", "--out", str(out_dir)]
            + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "serving 2 sessions" in captured
        assert "byte-identical to serial runs" in captured
        written = sorted(p.name for p in out_dir.glob("*.csv"))
        assert written == ["session-0.csv", "session-1.csv"]

    def test_serve_share_engine(self, capsys):
        code = main(
            ["serve", "--engine", "monetdb-sim", "--sessions", "2",
             "--per-session", "1", "--share-engine"] + COMMON
        )
        assert code == 0
        assert "shared engine" in capsys.readouterr().out

    def test_verify_rejected_with_shared_engine(self, capsys):
        code = main(
            ["serve", "--sessions", "2", "--share-engine", "--verify"]
            + COMMON
        )
        assert code == 1
        assert "isolated sessions" in capsys.readouterr().err

    def test_follow_streams_records(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--follow"] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "session-0 q0" in captured

    def test_accel_pacing_smoke(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--accel", "1000000", "--verify"]
            + COMMON
        )
        assert code == 0
        assert "byte-identical" in capsys.readouterr().out


class TestBenchSessions:
    def test_sweep_writes_deterministic_csv(self, tmp_path, capsys):
        out = tmp_path / "load.csv"
        code = main(
            ["bench-sessions", "--engines", "idea-sim",
             "--sessions", "1,2", "--per-session", "1",
             "--modes", "isolated,shared", "--out", str(out)] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "load report" in captured
        text = out.read_text(encoding="utf-8")
        lines = text.strip().splitlines()
        assert lines[0].startswith("engine,sessions,mode")
        assert len(lines) == 1 + 4  # 1 engine × 2 counts × 2 modes

    def test_cache_restores_cells_byte_identically(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        out_a, out_b = tmp_path / "a.csv", tmp_path / "b.csv"
        args = [
            "bench-sessions", "--engines", "idea-sim", "--sessions", "1,2",
            "--per-session", "1", "--modes", "isolated",
            "--cache-dir", str(cache),
        ] + COMMON
        assert main(args + ["--out", str(out_a)]) == 0
        capsys.readouterr()
        assert main(args + ["--out", str(out_b)]) == 0
        captured = capsys.readouterr().out
        assert "[cache]" in captured
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_unknown_engine_rejected(self, capsys):
        code = main(
            ["bench-sessions", "--engines", "no-such-engine"] + COMMON
        )
        assert code == 1
        assert "unknown engines" in capsys.readouterr().err


class TestServeAdaptive:
    def test_policy_markov(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--policy", "markov"] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "markov users" in captured

    def test_replay_policy_passes_verify(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--policy", "replay", "--verify"]
            + COMMON
        )
        assert code == 0
        assert "byte-identical to serial runs" in capsys.readouterr().out

    def test_verify_rejected_with_adaptive_policy(self, capsys):
        code = main(
            ["serve", "--sessions", "2", "--policy", "markov", "--verify"]
            + COMMON
        )
        assert code == 1
        assert "adaptive policies" in capsys.readouterr().err

    def test_open_system_arrivals(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "4",
             "--arrivals", "0.2", "--horizon", "40", "--residence", "25",
             "--policy", "uncertainty"] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "open system" in captured
        assert "departed mid-run" in captured

    def test_verify_rejected_with_arrivals(self, capsys):
        code = main(
            ["serve", "--sessions", "2", "--arrivals", "0.2", "--verify"]
            + COMMON
        )
        assert code == 1
        assert "open-system arrivals" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", [["--residence", "25"], ["--horizon", "40"]])
    def test_churn_flags_without_arrivals_rejected(self, capsys, flag):
        code = main(["serve", "--sessions", "2"] + flag + COMMON)
        assert code == 1
        assert "need --arrivals" in capsys.readouterr().err


class TestBenchAdaptive:
    def test_sweep_writes_deterministic_csv(self, tmp_path, capsys):
        out_a, out_b = tmp_path / "a.csv", tmp_path / "b.csv"
        args = [
            "bench-adaptive", "--engine", "idea-sim",
            "--policies", "replay,markov", "--sessions", "2",
            "--per-session", "1", "--churn", "closed,open",
            "--arrivals", "0.2", "--horizon", "40", "--residence", "25",
        ] + COMMON
        assert main(args + ["--out", str(out_a)]) == 0
        captured = capsys.readouterr().out
        assert "sessions × policy × churn report" in captured
        assert main(args + ["--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        lines = out_a.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("engine,policy,sessions,churn")
        assert len(lines) == 1 + 4  # 2 policies × 1 count × 2 churn modes

    def test_cache_restores_cells(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = [
            "bench-adaptive", "--engine", "idea-sim",
            "--policies", "markov", "--sessions", "2",
            "--per-session", "1", "--churn", "closed",
            "--cache-dir", str(cache),
        ] + COMMON
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "[cache]" in capsys.readouterr().out

    def test_unknown_policy_rejected(self, capsys):
        code = main(
            ["bench-adaptive", "--policies", "telepathy"] + COMMON
        )
        assert code == 1
        assert "unknown policies" in capsys.readouterr().err

    def test_unknown_churn_rejected(self, capsys):
        code = main(
            ["bench-adaptive", "--policies", "replay",
             "--churn", "sideways"] + COMMON
        )
        assert code == 1
        assert "unknown churn mode" in capsys.readouterr().err


class TestParser:
    @pytest.mark.parametrize(
        "command", ["serve", "bench-sessions", "bench-adaptive"]
    )
    def test_subcommands_registered(self, command):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([command])
        assert callable(args.func)

    def test_cache_subcommand_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["cache", "stats", "--cache-dir", "x"])
        assert callable(args.func)
