"""CLI tests for the session-server subcommands (serve, bench-sessions)."""

import pytest

from repro.cli import main

#: Small-but-honest configuration shared by all CLI invocations here.
COMMON = ["--size", "S", "--scale", "50000", "--seed", "5", "--tr", "1"]


class TestServe:
    def test_serve_verify_and_out(self, tmp_path, capsys):
        out_dir = tmp_path / "sessions"
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--verify", "--out", str(out_dir)]
            + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "serving 2 sessions" in captured
        assert "byte-identical to serial runs" in captured
        written = sorted(p.name for p in out_dir.glob("*.csv"))
        assert written == ["session-0.csv", "session-1.csv"]

    def test_serve_share_engine(self, capsys):
        code = main(
            ["serve", "--engine", "monetdb-sim", "--sessions", "2",
             "--per-session", "1", "--share-engine"] + COMMON
        )
        assert code == 0
        assert "shared engine" in capsys.readouterr().out

    def test_verify_rejected_with_shared_engine(self, capsys):
        code = main(
            ["serve", "--sessions", "2", "--share-engine", "--verify"]
            + COMMON
        )
        assert code == 1
        assert "isolated sessions" in capsys.readouterr().err

    def test_follow_streams_records(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--follow"] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "session-0 q0" in captured

    def test_accel_pacing_smoke(self, capsys):
        code = main(
            ["serve", "--engine", "idea-sim", "--sessions", "2",
             "--per-session", "1", "--accel", "1000000", "--verify"]
            + COMMON
        )
        assert code == 0
        assert "byte-identical" in capsys.readouterr().out


class TestBenchSessions:
    def test_sweep_writes_deterministic_csv(self, tmp_path, capsys):
        out = tmp_path / "load.csv"
        code = main(
            ["bench-sessions", "--engines", "idea-sim",
             "--sessions", "1,2", "--per-session", "1",
             "--modes", "isolated,shared", "--out", str(out)] + COMMON
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "load report" in captured
        text = out.read_text(encoding="utf-8")
        lines = text.strip().splitlines()
        assert lines[0].startswith("engine,sessions,mode")
        assert len(lines) == 1 + 4  # 1 engine × 2 counts × 2 modes

    def test_cache_restores_cells_byte_identically(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        out_a, out_b = tmp_path / "a.csv", tmp_path / "b.csv"
        args = [
            "bench-sessions", "--engines", "idea-sim", "--sessions", "1,2",
            "--per-session", "1", "--modes", "isolated",
            "--cache-dir", str(cache),
        ] + COMMON
        assert main(args + ["--out", str(out_a)]) == 0
        capsys.readouterr()
        assert main(args + ["--out", str(out_b)]) == 0
        captured = capsys.readouterr().out
        assert "[cache]" in captured
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_unknown_engine_rejected(self, capsys):
        code = main(
            ["bench-sessions", "--engines", "no-such-engine"] + COMMON
        )
        assert code == 1
        assert "unknown engines" in capsys.readouterr().err


class TestParser:
    @pytest.mark.parametrize("command", ["serve", "bench-sessions"])
    def test_subcommands_registered(self, command):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([command])
        assert callable(args.func)
