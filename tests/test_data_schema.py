"""Tests for column profiling."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.data.schema import (
    ColumnKind,
    profile_column,
    profile_dataset,
    profile_table,
)
from repro.data.storage import Table


class TestProfileColumn:
    def test_quantitative_profile(self):
        profile = profile_column("v", np.array([1.0, 5.0, 3.0]))
        assert profile.kind is ColumnKind.QUANTITATIVE
        assert profile.minimum == 1.0
        assert profile.maximum == 5.0
        assert profile.std > 0
        assert len(profile.quantiles) == 101
        assert profile.span == 4.0

    def test_quantile_lookup(self):
        profile = profile_column("v", np.arange(1001, dtype=np.float64))
        assert profile.quantile(0.0) == pytest.approx(0.0)
        assert profile.quantile(0.5) == pytest.approx(500.0)
        assert profile.quantile(1.0) == pytest.approx(1000.0)
        # Clipped outside [0, 1].
        assert profile.quantile(2.0) == pytest.approx(1000.0)

    def test_nominal_profile_orders_by_frequency(self):
        profile = profile_column("c", np.array(["b", "a", "b", "b", "a", "c"]))
        assert profile.kind is ColumnKind.NOMINAL
        assert profile.categories == ("b", "a", "c")
        assert profile.cardinality == 3

    def test_nominal_has_no_span(self):
        profile = profile_column("c", np.array(["x", "y"]))
        with pytest.raises(QueryError):
            _ = profile.span

    def test_quantitative_has_no_categories(self):
        profile = profile_column("v", np.array([1, 2]))
        assert profile.categories == ()


class TestProfileTable:
    def test_profiles_every_column(self, flights_table):
        profiles = profile_table(flights_table)
        assert set(profiles) == set(flights_table.column_names)

    def test_kinds_match_dtypes(self, flights_table):
        profiles = profile_table(flights_table)
        assert profiles["DEP_DELAY"].kind is ColumnKind.QUANTITATIVE
        assert profiles["ORIGIN"].kind is ColumnKind.NOMINAL


class TestProfileDataset:
    def test_profiles_logical_columns_through_joins(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        profiles = profile_dataset(star)
        # FK columns must not be profiled; logical strings must be.
        assert "ORIGIN_KEY" not in profiles
        assert profiles["ORIGIN"].kind is ColumnKind.NOMINAL
        assert profiles["DEP_DELAY"].kind is ColumnKind.QUANTITATIVE

    def test_subset_selection(self, flights_dataset):
        profiles = profile_dataset(flights_dataset, columns=["DISTANCE"])
        assert list(profiles) == ["DISTANCE"]

    def test_dataset_profile_matches_table_profile(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        from_star = profile_dataset(star)["UNIQUE_CARRIER"]
        from_flat = profile_table(flights_table)["UNIQUE_CARRIER"]
        assert from_star.categories == from_flat.categories
