"""Differential test layer: compiled kernels ≡ the uncompiled path, bit for bit.

The compiled-query kernel (``repro.query.kernels``) exists purely as an
optimization; its contract is that every result it produces — keys,
counts, per-group moment arrays, estimator outputs — is **bitwise
identical** to ``compute_grouped_stats``. A seeded generator produces
hundreds of random resolved queries spanning every filter shape, bin
type and aggregate mix (plus empty-result and NaN/inf edges), and each
one is checked over the full table and random row-index prefixes.
"""

from __future__ import annotations

import random
import struct

import numpy as np
import pytest

from repro.data.storage import Dataset, Table
from repro.engines.estimators import srs_estimate
from repro.query.filters import (
    And,
    Comparison,
    Or,
    RangePredicate,
    SetPredicate,
)
from repro.query.groundtruth import compute_grouped_stats
from repro.query.kernels import CompiledQueryKernel
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind

#: How many random queries the fuzz sweep draws (ISSUE 7: >= 300).
FUZZ_CASES = 320

QUANT_FIELDS = (
    "MONTH",
    "DAY_OF_WEEK",
    "DEP_TIME",
    "ARR_TIME",
    "DEP_DELAY",
    "ARR_DELAY",
    "AIR_TIME",
    "DISTANCE",
    "ELAPSED_TIME",
)
NOMINAL_FIELDS = ("UNIQUE_CARRIER", "ORIGIN", "ORIGIN_STATE", "DEST", "DEST_STATE")


# ----------------------------------------------------------------------
# Exact-equality helpers (bit patterns, so NaN payloads and ±0 count too)
# ----------------------------------------------------------------------
def _bits(value: float) -> bytes:
    return struct.pack("<d", float(value))


def assert_stats_equal(fast, naive):
    assert fast.keys == naive.keys
    assert fast.counts.dtype == naive.counts.dtype
    assert fast.counts.tobytes() == naive.counts.tobytes()
    assert fast.rows_aggregated == naive.rows_aggregated
    assert fast.rows_scanned == naive.rows_scanned
    for name in ("sums", "sumsqs", "mins", "maxs"):
        fast_dict = getattr(fast, name)
        naive_dict = getattr(naive, name)
        assert sorted(fast_dict) == sorted(naive_dict)
        for j in naive_dict:
            assert fast_dict[j].dtype == naive_dict[j].dtype, (name, j)
            assert fast_dict[j].tobytes() == naive_dict[j].tobytes(), (name, j)


def assert_estimates_equal(fast_pair, naive_pair):
    for fast_map, naive_map in zip(fast_pair, naive_pair):
        assert fast_map.keys() == naive_map.keys()
        for key, naive_row in naive_map.items():
            fast_row = fast_map[key]
            assert len(fast_row) == len(naive_row)
            for a, b in zip(fast_row, naive_row):
                if a is None or b is None:
                    assert a is None and b is None, (key, a, b)
                else:
                    assert _bits(a) == _bits(b), (key, a, b)


# ----------------------------------------------------------------------
# Seeded random query generator
# ----------------------------------------------------------------------
def _random_filter(rng: random.Random, table: Table):
    shape = rng.randrange(7)
    if shape == 0:
        return None

    def leaf():
        kind = rng.randrange(4)
        if kind == 0:
            field = rng.choice(QUANT_FIELDS)
            column = table[field]
            lo, hi = float(column.min()), float(column.max())
            a, b = sorted(rng.uniform(lo - 10, hi + 10) for _ in range(2))
            which = rng.randrange(3)
            if which == 0:
                return RangePredicate(field, a, b)
            if which == 1:
                return RangePredicate(field, a, None)
            return RangePredicate(field, None, b)
        if kind == 1:
            field = rng.choice(NOMINAL_FIELDS)
            present = sorted(set(table[field][:200].tolist()))
            values = set(rng.sample(present, k=min(len(present), rng.randrange(1, 4))))
            if rng.random() < 0.3:
                values.add("ZZZ-NOT-A-CATEGORY")  # empty-result edge
            return SetPredicate(field, frozenset(values))
        if kind == 2:
            field = rng.choice(QUANT_FIELDS)
            column = table[field]
            op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
            value = float(rng.choice(column[:500]).item()) if rng.random() < 0.7 else rng.uniform(-50, 50)
            return Comparison(field, op, value)
        # Degenerate range: low == high selects nothing (low <= x < high).
        field = rng.choice(QUANT_FIELDS)
        pivot = float(rng.choice(table[field][:500]).item())
        return RangePredicate(field, pivot, pivot)

    if shape <= 3:
        return leaf()
    combinator = And if shape <= 5 else Or
    return combinator(*(leaf() for _ in range(rng.randrange(2, 4))))


def _random_bin(rng: random.Random, table: Table, field: str) -> BinDimension:
    if field in NOMINAL_FIELDS:
        return BinDimension(field=field, kind=BinKind.NOMINAL)
    column = table[field]
    span = float(column.max() - column.min()) or 1.0
    width = span / rng.choice([3, 5, 8, 13, 25])
    reference = float(column.min()) + rng.uniform(-width, width)
    return BinDimension(
        field=field, kind=BinKind.QUANTITATIVE, width=width, reference=reference
    )


def random_query(rng: random.Random, table: Table) -> AggQuery:
    num_bins = rng.choice([1, 1, 2])
    fields = rng.sample(QUANT_FIELDS + NOMINAL_FIELDS, k=num_bins)
    bins = tuple(_random_bin(rng, table, field) for field in fields)
    aggregates = [Aggregate(func=AggFunc.COUNT)]
    for _ in range(rng.randrange(0, 3)):
        func = rng.choice([AggFunc.SUM, AggFunc.AVG, AggFunc.MIN, AggFunc.MAX])
        aggregates.append(Aggregate(func=func, field=rng.choice(QUANT_FIELDS)))
    rng.shuffle(aggregates)
    return AggQuery(
        table=table.name,
        bins=bins,
        aggregates=tuple(aggregates),
        filter=_random_filter(rng, table),
    )


def _check_query(dataset: Dataset, query: AggQuery, np_rng: np.random.Generator):
    kernel = CompiledQueryKernel(dataset, query)
    num_rows = dataset.num_fact_rows

    subsets = [None]
    permutation = np_rng.permutation(num_rows)
    for _ in range(2):
        n = int(np_rng.integers(0, num_rows + 1))
        subsets.append(permutation[:n])
    # Arbitrary index arrays (duplicates allowed) must also agree.
    subsets.append(np_rng.integers(0, num_rows, size=int(np_rng.integers(1, 400))))

    for indices in subsets:
        naive = compute_grouped_stats(dataset, query, indices)
        fast = kernel.evaluate(indices)
        assert_stats_equal(fast, naive)
        n = naive.rows_scanned
        if n:
            assert_estimates_equal(
                srs_estimate(fast, n, num_rows, 0.95),
                srs_estimate(naive, n, num_rows, 0.95),
            )


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def test_differential_fuzz_sweep(flights_table, flights_dataset):
    """>= 300 random queries: compiled == uncompiled on every subset."""
    rng = random.Random(0xC0FFEE)
    np_rng = np.random.default_rng(0xC0FFEE)
    seen_shapes = set()
    for case in range(FUZZ_CASES):
        query = random_query(rng, flights_table)
        seen_shapes.add(
            (
                query.num_bin_dims,
                query.binning_types,
                type(query.filter).__name__,
                tuple(sorted(a.func.value for a in query.aggregates)),
            )
        )
        _check_query(flights_dataset, query, np_rng)
    # The generator must actually exercise diversity, not 320 clones.
    assert len(seen_shapes) > 60


def test_differential_on_normalized_schema(flights_table):
    """FK-dereferenced (join) columns compile and agree bitwise."""
    from repro.data.normalize import normalize

    dataset = normalize(flights_table)
    rng = random.Random(7)
    np_rng = np.random.default_rng(7)
    for _ in range(20):
        query = random_query(rng, flights_table)
        _check_query(dataset, query, np_rng)


def test_nan_and_inf_aggregate_cells(flights_dataset):
    """NaN/inf in aggregated columns flow through bit-identically."""
    values = np.linspace(-5.0, 5.0, 400)
    values[7] = np.nan
    values[123] = np.inf
    values[301] = -np.inf
    values[44] = -0.0
    table = Table(
        "edge",
        {
            "bucket": np.arange(400) % 7,
            "category": np.array([f"c{i % 3}" for i in range(400)]),
            "metric": values,
        },
    )
    dataset = Dataset.from_table(table)
    np_rng = np.random.default_rng(99)
    for bins in (
        (BinDimension(field="bucket", kind=BinKind.QUANTITATIVE, width=2.0, reference=0.0),),
        (BinDimension(field="category", kind=BinKind.NOMINAL),),
        (
            BinDimension(field="bucket", kind=BinKind.QUANTITATIVE, width=3.0, reference=-1.0),
            BinDimension(field="category", kind=BinKind.NOMINAL),
        ),
    ):
        query = AggQuery(
            table="edge",
            bins=bins,
            aggregates=(
                Aggregate(func=AggFunc.COUNT),
                Aggregate(func=AggFunc.SUM, field="metric"),
                Aggregate(func=AggFunc.AVG, field="metric"),
                Aggregate(func=AggFunc.MIN, field="metric"),
                Aggregate(func=AggFunc.MAX, field="metric"),
            ),
        )
        _check_query(dataset, query, np_rng)


def test_empty_result_edges(flights_dataset, flights_table):
    """Filters selecting zero rows produce identical empty stats."""
    np_rng = np.random.default_rng(5)
    for filt in (
        RangePredicate("DISTANCE", 1e9, None),
        SetPredicate("ORIGIN", frozenset({"ZZZ-NOT-A-CATEGORY"})),
        And(RangePredicate("MONTH", 1, None), RangePredicate("MONTH", None, 0)),
    ):
        query = AggQuery(
            table=flights_table.name,
            bins=(BinDimension(field="ORIGIN", kind=BinKind.NOMINAL),),
            aggregates=(
                Aggregate(func=AggFunc.COUNT),
                Aggregate(func=AggFunc.AVG, field="ARR_DELAY"),
            ),
            filter=filt,
        )
        _check_query(flights_dataset, query, np_rng)
        kernel = CompiledQueryKernel(flights_dataset, query)
        stats = kernel.evaluate(None)
        assert stats.keys == []
        assert stats.counts.shape == (0,)


def test_unresolved_query_rejected(flights_dataset, flights_table):
    query = AggQuery(
        table=flights_table.name,
        bins=(BinDimension(field="DISTANCE", kind=BinKind.QUANTITATIVE, bin_count=10),),
        aggregates=(Aggregate(func=AggFunc.COUNT),),
    )
    from repro.common.errors import QueryError

    with pytest.raises(QueryError):
        CompiledQueryKernel(flights_dataset, query)


def test_packing_overflow_falls_back_to_naive_path():
    """Huge 2-D code spans compile in fallback mode yet stay equivalent.

    Spans are chosen in the gap between the kernel's conservative 2**62
    packing guard and the true int64 limit, so the uncompiled path still
    produces a valid answer to compare against: first span 2**32 + 2,
    second span 2**30 gives a maximum packed code just above 2**62.
    """
    table = Table(
        "wide",
        {
            "a": np.array([0.0, float(2**32 + 1), 0.0, 5.0]),
            "b": np.array([0.0, float(2**30 - 1), float(2**30 - 1), 7.0]),
            "m": np.array([1.0, 2.0, 3.0, 4.0]),
        },
    )
    dataset = Dataset.from_table(table)
    query = AggQuery(
        table="wide",
        bins=(
            BinDimension(field="a", kind=BinKind.QUANTITATIVE, width=1.0, reference=0.0),
            BinDimension(field="b", kind=BinKind.QUANTITATIVE, width=1.0, reference=0.0),
        ),
        aggregates=(Aggregate(func=AggFunc.SUM, field="m"),),
    )
    kernel = CompiledQueryKernel(dataset, query)
    assert not kernel.supports_incremental
    naive = compute_grouped_stats(dataset, query)
    assert_stats_equal(kernel.evaluate(None), naive)
    prefix = np.array([1, 3, 0], dtype=np.int64)
    assert_stats_equal(
        kernel.evaluate(prefix), compute_grouped_stats(dataset, query, prefix)
    )


# ----------------------------------------------------------------------
# Satellite 5 regression: one gather per distinct column, per poll
# ----------------------------------------------------------------------
def _counting_dataset(dataset: Dataset):
    calls = []
    original = dataset.gather_column

    class _Counting:
        def gather_column(self, name):
            calls.append(name)
            return original(name)

        def __getattr__(self, attr):
            return getattr(dataset, attr)

    return _Counting(), calls


def test_gather_column_called_once_per_column_per_poll(flights_dataset, flights_table):
    """The naive path gathers each distinct column exactly once per call."""
    query = AggQuery(
        table=flights_table.name,
        bins=(BinDimension(field="ARR_DELAY", kind=BinKind.QUANTITATIVE, width=10.0, reference=0.0),),
        aggregates=(
            Aggregate(func=AggFunc.AVG, field="ARR_DELAY"),  # same field as bin
            Aggregate(func=AggFunc.SUM, field="ARR_DELAY"),  # and again
        ),
        filter=RangePredicate("ARR_DELAY", -30.0, 90.0),  # and in the filter
    )
    proxy, calls = _counting_dataset(flights_dataset)
    compute_grouped_stats(proxy, query, np.arange(500))
    assert calls == ["ARR_DELAY"], calls


def test_compiled_kernel_gathers_only_at_compile_time(flights_dataset, flights_table):
    """Polling a compiled kernel touches gather_column zero times."""
    query = AggQuery(
        table=flights_table.name,
        bins=(BinDimension(field="ORIGIN", kind=BinKind.NOMINAL),),
        aggregates=(
            Aggregate(func=AggFunc.COUNT),
            Aggregate(func=AggFunc.AVG, field="DEP_DELAY"),
        ),
        filter=RangePredicate("DISTANCE", 100.0, 2000.0),
    )
    proxy, calls = _counting_dataset(flights_dataset)
    kernel = CompiledQueryKernel(proxy, query)
    compile_calls = list(calls)
    assert sorted(set(compile_calls)) == ["DEP_DELAY", "DISTANCE", "ORIGIN"]
    assert len(compile_calls) == 3  # once per distinct column, total
    for n in (100, 500, 2000):
        kernel.evaluate(np.arange(n))
    assert calls == compile_calls  # zero per-poll gathers
