"""Tests for predicate trees and their vectorized evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.common.errors import QueryError
from repro.query.filters import (
    And,
    Comparison,
    Or,
    RangePredicate,
    SetPredicate,
    conjoin,
    evaluate_filter,
    filter_from_dict,
)


@pytest.fixture
def columns():
    data = {
        "v": np.array([0.0, 5.0, 10.0, 15.0, 20.0]),
        "w": np.array([1, 1, 2, 2, 3], dtype=np.int64),
        "c": np.array(["a", "b", "a", "c", "b"]),
    }
    return data.__getitem__


class TestRangePredicate:
    def test_half_open_semantics(self, columns):
        mask = RangePredicate("v", 5.0, 15.0).evaluate(columns)
        assert list(mask) == [False, True, True, False, False]

    def test_unbounded_low(self, columns):
        mask = RangePredicate("v", None, 10.0).evaluate(columns)
        assert list(mask) == [True, True, False, False, False]

    def test_unbounded_high(self, columns):
        mask = RangePredicate("v", 10.0, None).evaluate(columns)
        assert list(mask) == [False, False, True, True, True]

    def test_rejects_no_bounds(self):
        with pytest.raises(QueryError):
            RangePredicate("v", None, None)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(QueryError):
            RangePredicate("v", 10.0, 5.0)

    def test_rejects_string_column(self, columns):
        with pytest.raises(QueryError):
            RangePredicate("c", 0.0, 1.0).evaluate(columns)

    def test_fields(self):
        assert RangePredicate("v", 0, 1).fields() == ("v",)


class TestSetPredicate:
    def test_membership(self, columns):
        mask = SetPredicate("c", frozenset(["a", "c"])).evaluate(columns)
        assert list(mask) == [True, False, True, True, False]

    def test_rejects_empty_set(self):
        with pytest.raises(QueryError):
            SetPredicate("c", frozenset())

    def test_works_on_numeric_column_as_strings(self, columns):
        mask = SetPredicate("w", frozenset(["1"])).evaluate(columns)
        assert list(mask) == [True, True, False, False, False]


class TestComparison:
    @pytest.mark.parametrize("op,expected", [
        ("<", [True, False, False, False, False]),
        ("<=", [True, True, False, False, False]),
        (">", [False, False, True, True, True]),
        (">=", [False, True, True, True, True]),
        ("=", [False, True, False, False, False]),
        ("!=", [True, False, True, True, True]),
    ])
    def test_numeric_operators(self, columns, op, expected):
        mask = Comparison("v", op, 5.0).evaluate(columns)
        assert list(mask) == expected

    def test_string_equality(self, columns):
        mask = Comparison("c", "=", "a").evaluate(columns)
        assert list(mask) == [True, False, True, False, False]

    def test_rejects_unknown_operator(self):
        with pytest.raises(QueryError):
            Comparison("v", "<>", 1.0)

    def test_rejects_ordering_on_string_value(self):
        with pytest.raises(QueryError):
            Comparison("v", "<", "abc")

    def test_rejects_numeric_comparison_on_string_column(self, columns):
        with pytest.raises(QueryError):
            Comparison("c", "<", 5.0).evaluate(columns)


class TestCombinators:
    def test_and_intersects(self, columns):
        expr = And(RangePredicate("v", 5.0, None), Comparison("w", "=", 2))
        assert list(expr.evaluate(columns)) == [False, False, True, True, False]

    def test_or_unions(self, columns):
        expr = Or(Comparison("c", "=", "c"), Comparison("w", "=", 1))
        assert list(expr.evaluate(columns)) == [True, True, False, True, False]

    def test_nested_combinators_flatten(self):
        inner = And(Comparison("v", ">", 0), Comparison("v", "<", 10))
        outer = And(inner, Comparison("w", "=", 1))
        assert len(outer.children) == 3

    def test_flattening_preserves_semantics(self, columns):
        nested = And(And(Comparison("v", ">", 0), Comparison("v", "<", 12)),
                     Comparison("w", "!=", 3))
        flat = And(Comparison("v", ">", 0), Comparison("v", "<", 12),
                   Comparison("w", "!=", 3))
        assert np.array_equal(nested.evaluate(columns), flat.evaluate(columns))
        assert nested == flat

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            And()

    def test_rejects_non_filter_children(self):
        with pytest.raises(QueryError):
            And("not a filter")

    def test_fields_deduplicated_in_order(self):
        expr = And(Comparison("b", "=", 1), Comparison("a", "=", 1),
                   Comparison("b", "!=", 2))
        assert expr.fields() == ("b", "a")

    def test_equality_and_hash(self):
        a = And(Comparison("v", "=", 1), Comparison("w", "=", 2))
        b = And(Comparison("v", "=", 1), Comparison("w", "=", 2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Or(Comparison("v", "=", 1), Comparison("w", "=", 2))


class TestEvaluateFilter:
    def test_none_selects_all(self, columns):
        mask = evaluate_filter(None, columns, 5)
        assert mask.all() and len(mask) == 5

    def test_checks_mask_shape(self, columns):
        with pytest.raises(QueryError):
            evaluate_filter(Comparison("v", "=", 1.0), columns, 99)


class TestSerialization:
    @pytest.mark.parametrize("expr", [
        RangePredicate("v", 1.0, 2.0),
        RangePredicate("v", None, 2.0),
        SetPredicate("c", frozenset(["x", "y"])),
        Comparison("v", ">=", 5.0),
        Comparison("c", "=", "hello"),
        And(RangePredicate("v", 0, 1), SetPredicate("c", frozenset(["a"]))),
        Or(Comparison("v", "<", 0), And(Comparison("w", "=", 1),
                                        Comparison("c", "!=", "b"))),
    ])
    def test_dict_round_trip(self, expr):
        assert filter_from_dict(expr.to_dict()) == expr

    def test_from_dict_none(self):
        assert filter_from_dict(None) is None

    def test_from_dict_rejects_unknown_type(self):
        with pytest.raises(QueryError):
            filter_from_dict({"type": "xor"})


class TestConjoin:
    def test_empty_gives_none(self):
        assert conjoin([None, None]) is None

    def test_single_passes_through(self):
        expr = Comparison("v", "=", 1)
        assert conjoin([None, expr]) is expr

    def test_multiple_become_and(self):
        a, b = Comparison("v", "=", 1), Comparison("w", "=", 2)
        combined = conjoin([a, None, b])
        assert isinstance(combined, And)
        assert combined.children == (a, b)


@hyp_settings(max_examples=50, deadline=None)
@given(
    low=st.floats(-100, 100),
    width=st.floats(0.1, 50),
    values=st.lists(st.floats(-200, 200), min_size=1, max_size=50),
)
def test_range_mask_matches_pointwise(low, width, values):
    """Property: vectorized evaluation equals the pointwise definition."""
    array = np.array(values)
    predicate = RangePredicate("v", low, low + width)
    mask = predicate.evaluate(lambda _name: array)
    expected = [(low <= v < low + width) for v in values]
    assert list(mask) == expected


@hyp_settings(max_examples=50, deadline=None)
@given(values=st.lists(st.integers(0, 5), min_size=1, max_size=60))
def test_and_or_de_morgan_bounds(values):
    """Property: |A ∧ B| <= min(|A|, |B|) and |A ∨ B| >= max(|A|, |B|)."""
    array = np.array(values, dtype=np.int64)
    get = lambda _name: array
    a = Comparison("v", "<", 3)
    b = Comparison("v", ">", 1)
    both = And(a, b).evaluate(get).sum()
    either = Or(a, b).evaluate(get).sum()
    assert both <= min(a.evaluate(get).sum(), b.evaluate(get).sum())
    assert either >= max(a.evaluate(get).sum(), b.evaluate(get).sum())
    assert both + either == a.evaluate(get).sum() + b.evaluate(get).sum()
