"""The tree must satisfy its own determinism contract.

This is the in-process equivalent of CI's ``repro lint src --strict``
gate: zero unsuppressed findings, no stale baseline entries, and every
pragma suppression in ``src/`` carries a written reason.
"""

from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_PATH, load_baseline
from repro.analysis.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def _lint_src():
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_PATH)
    return run_lint([REPO_ROOT / "src"], baseline=baseline)


def test_src_lints_clean_under_strict():
    result = _lint_src()
    assert not result.parse_errors, result.parse_errors
    report = "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in result.findings
    )
    assert not result.findings, f"determinism lint found:\n{report}"
    assert not result.stale_baseline, (
        "stale baseline entries — regenerate with tools/regen_lint_baseline.py"
    )
    assert result.exit_code(strict=True) == 0
    assert result.files_scanned > 50


def test_every_suppression_has_a_reason():
    result = _lint_src()
    for finding, pragma in result.pragma_suppressed:
        assert pragma.reason.strip(), f"reasonless pragma at {finding.location()}"
