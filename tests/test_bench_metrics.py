"""Tests for the §4.7 metric suite."""

import math

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.bench.metrics import QueryMetrics, compute_metrics
from repro.common.errors import BenchmarkError
from repro.query.model import (
    AggFunc,
    Aggregate,
    AggQuery,
    BinDimension,
    BinKind,
    QueryResult,
)


def _query(num_aggs=1):
    aggs = [Aggregate(AggFunc.COUNT)]
    if num_aggs == 2:
        aggs.append(Aggregate(AggFunc.AVG, "v"))
    return AggQuery(
        "t",
        bins=(BinDimension("g", BinKind.NOMINAL),),
        aggregates=tuple(aggs),
    )


def _ground_truth(values, num_aggs=1):
    return QueryResult(
        query=_query(num_aggs), values=values, exact=True, fraction=1.0
    )


def _approx(values, margins=None, num_aggs=1):
    return QueryResult(
        query=_query(num_aggs),
        values=values,
        margins=margins or {},
        exact=False,
        fraction=0.1,
        rows_processed=100,
    )


class TestViolatedQueries:
    def test_violation_metrics(self):
        truth = _ground_truth({("a",): (10.0,), ("b",): (20.0,)})
        metrics = compute_metrics(None, truth)
        assert metrics.tr_violated
        assert metrics.missing_bins == 1.0
        assert metrics.bins_delivered == 0
        assert metrics.bins_in_gt == 2
        assert math.isnan(metrics.rel_error_avg)
        assert math.isnan(metrics.cosine_distance)

    def test_ground_truth_must_be_exact(self):
        fake_truth = _approx({("a",): (1.0,)})
        with pytest.raises(BenchmarkError):
            compute_metrics(None, fake_truth)


class TestPerfectAnswer:
    def test_all_zero_errors(self):
        values = {("a",): (10.0,), ("b",): (20.0,)}
        truth = _ground_truth(dict(values))
        metrics = compute_metrics(_approx(dict(values)), truth)
        assert not metrics.tr_violated
        assert metrics.missing_bins == 0.0
        assert metrics.rel_error_avg == 0.0
        assert metrics.smape == 0.0
        assert metrics.cosine_distance == pytest.approx(0.0, abs=1e-12)
        assert metrics.bias == pytest.approx(1.0)


class TestMissingBins:
    def test_ratio_definition(self):
        truth = _ground_truth({("a",): (1.0,), ("b",): (2.0,), ("c",): (3.0,)})
        result = _approx({("a",): (1.0,)})
        metrics = compute_metrics(result, truth)
        assert metrics.missing_bins == pytest.approx(2 / 3)
        assert metrics.bins_delivered == 1
        assert metrics.bins_in_gt == 3

    def test_empty_ground_truth(self):
        truth = _ground_truth({})
        metrics = compute_metrics(_approx({}), truth)
        assert metrics.missing_bins == 0.0


class TestRelativeError:
    def test_mean_relative_error(self):
        truth = _ground_truth({("a",): (10.0,), ("b",): (20.0,)})
        result = _approx({("a",): (12.0,), ("b",): (15.0,)})
        metrics = compute_metrics(result, truth)
        # |12-10|/10 = 0.2; |15-20|/20 = 0.25 → mean 0.225
        assert metrics.rel_error_avg == pytest.approx(0.225)

    def test_zero_truth_bins_excluded_from_mre(self):
        truth = _ground_truth({("a",): (0.0,), ("b",): (10.0,)})
        result = _approx({("a",): (1.0,), ("b",): (10.0,)})
        metrics = compute_metrics(result, truth)
        assert metrics.rel_error_avg == pytest.approx(0.0)  # only bin b counted

    def test_smape_defined_at_zero_truth(self):
        truth = _ground_truth({("a",): (0.0,)})
        result = _approx({("a",): (1.0,)})
        metrics = compute_metrics(result, truth)
        assert metrics.smape == pytest.approx(1.0)  # |1-0|/(1+0)

    def test_smape_zero_when_both_zero(self):
        truth = _ground_truth({("a",): (0.0,)})
        result = _approx({("a",): (0.0,)})
        metrics = compute_metrics(result, truth)
        assert metrics.smape == 0.0


class TestCosineDistance:
    def test_proportional_vectors_have_zero_distance(self):
        truth = _ground_truth({("a",): (10.0,), ("b",): (20.0,)})
        result = _approx({("a",): (5.0,), ("b",): (10.0,)})  # same shape, half scale
        metrics = compute_metrics(result, truth)
        assert metrics.cosine_distance == pytest.approx(0.0, abs=1e-12)
        assert metrics.bias == pytest.approx(0.5)

    def test_missing_bins_zero_filled(self):
        truth = _ground_truth({("a",): (10.0,), ("b",): (10.0,)})
        result = _approx({("a",): (10.0,)})
        metrics = compute_metrics(result, truth)
        # cos([10,0],[10,10]) = 1/sqrt(2)
        assert metrics.cosine_distance == pytest.approx(1 - 1 / math.sqrt(2))

    def test_empty_result_against_nonzero_truth(self):
        truth = _ground_truth({("a",): (10.0,)})
        metrics = compute_metrics(_approx({}), truth)
        assert metrics.cosine_distance == 1.0


class TestMargins:
    def test_relative_margins_and_out_of_margin(self):
        truth = _ground_truth({("a",): (10.0,), ("b",): (20.0,)})
        result = _approx(
            {("a",): (11.0,), ("b",): (30.0,)},
            margins={("a",): (2.0,), ("b",): (3.0,)},
        )
        metrics = compute_metrics(result, truth)
        # relative margins: 2/11, 3/30
        assert metrics.margin_avg == pytest.approx((2 / 11 + 3 / 30) / 2)
        # bin b is off by 10 > 3 → out of margin
        assert metrics.bins_out_of_margin == 1

    def test_none_margins_skipped(self):
        truth = _ground_truth({("a",): (10.0,)})
        result = _approx({("a",): (11.0,)}, margins={("a",): (None,)})
        metrics = compute_metrics(result, truth)
        assert math.isnan(metrics.margin_avg)
        assert metrics.bins_out_of_margin == 0


class TestMultiAggregate:
    def test_metrics_average_across_aggregates(self):
        truth = _ground_truth(
            {("a",): (10.0, 100.0)}, num_aggs=2
        )
        result = _approx({("a",): (10.0, 50.0)}, num_aggs=2)
        metrics = compute_metrics(result, truth)
        # agg0 perfect (0.0), agg1 rel error 0.5 → mean 0.25
        assert metrics.rel_error_avg == pytest.approx(0.25)


class TestBias:
    def test_overestimation(self):
        truth = _ground_truth({("a",): (10.0,), ("b",): (10.0,)})
        result = _approx({("a",): (15.0,), ("b",): (15.0,)})
        metrics = compute_metrics(result, truth)
        assert metrics.bias == pytest.approx(1.5)

    def test_bias_only_over_returned_bins(self):
        truth = _ground_truth({("a",): (10.0,), ("b",): (1000.0,)})
        result = _approx({("a",): (10.0,)})
        metrics = compute_metrics(result, truth)
        assert metrics.bias == pytest.approx(1.0)

    def test_cancelling_truths_leave_bias_undefined(self):
        """Signed truths summing to zero must not divide by zero.

        AVG aggregates can go negative (arrival delays), so a delivered
        bin set like (+5, -5) has |truth| sum > 0 but signed sum == 0 —
        the bias denominator. Regression for a crash surfaced ~40k
        sessions into a population-scale serving run.
        """
        truth = _ground_truth({("a",): (5.0,), ("b",): (-5.0,)})
        result = _approx({("a",): (4.0,), ("b",): (-3.0,)})
        metrics = compute_metrics(result, truth)
        assert math.isnan(metrics.bias)

    def test_negative_truths_with_nonzero_sum_keep_bias(self):
        truth = _ground_truth({("a",): (5.0,), ("b",): (-3.0,)})
        result = _approx({("a",): (5.0,), ("b",): (-3.0,)})
        metrics = compute_metrics(result, truth)
        assert metrics.bias == pytest.approx(1.0)


@hyp_settings(max_examples=60, deadline=None)
@given(
    truths=st.lists(st.floats(0.5, 1e4), min_size=1, max_size=12),
    noise=st.lists(st.floats(0.0, 2.0), min_size=12, max_size=12),
    keep=st.lists(st.booleans(), min_size=12, max_size=12),
)
def test_metric_bounds_property(truths, noise, keep):
    """Property: metric ranges hold for arbitrary results.

    missing ∈ [0,1]; MRE ≥ 0; SMAPE ∈ [0,1]; cosine ∈ [0,2]; bias > 0 for
    positive vectors; out-of-margin ≤ delivered bins.
    """
    keys = [(f"k{i}",) for i in range(len(truths))]
    truth = _ground_truth({k: (t,) for k, t in zip(keys, truths)})
    values = {}
    for i, (key, t) in enumerate(zip(keys, truths)):
        if keep[i % len(keep)]:
            values[key] = (t * noise[i % len(noise)],)
    result = _approx(values)
    metrics = compute_metrics(result, truth)
    assert 0.0 <= metrics.missing_bins <= 1.0
    if values:
        assert metrics.rel_error_avg >= 0.0
        assert 0.0 <= metrics.smape <= 1.0
        assert 0.0 <= metrics.cosine_distance <= 2.0
        if not math.isnan(metrics.bias):
            assert metrics.bias >= 0.0
    assert metrics.bins_out_of_margin <= max(len(values), 1)
