"""Tests for the steppable session driver (§4.4 event loop, factored out).

The refactor contract: :class:`SessionDriver` stepped to completion is
*byte-identical* to the historical serial loop (now a façade in
:class:`BenchmarkDriver`), and its event interface is safe for external
pacing — ``next_event_time`` is pure, events are processed in
nondecreasing time order, and records stream out as they are produced.
"""

import io

import pytest

from repro.bench.driver import BenchmarkDriver, SessionDriver
from repro.bench.report import DetailedReport
from repro.common.clock import VirtualClock
from repro.common.errors import BenchmarkError
from repro.engines.columnstore import ColumnStoreEngine
from repro.engines.progressive import ProgressiveEngine
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import (
    CreateViz,
    Link,
    SelectBins,
    VizSpec,
    Workflow,
    WorkflowType,
)


def _viz(name, field="DEP_DELAY", nominal=False):
    bins = (
        (BinDimension(field, BinKind.NOMINAL),)
        if nominal
        else (BinDimension(field, BinKind.QUANTITATIVE, width=20.0),)
    )
    return VizSpec(name, "flights", bins, (Aggregate(AggFunc.COUNT),))


@pytest.fixture
def two_workflows(flights_table):
    import numpy as np

    carriers, counts = np.unique(
        flights_table["UNIQUE_CARRIER"], return_counts=True
    )
    top_carrier = str(carriers[np.argmax(counts)])
    first = Workflow(
        name="wf_a",
        workflow_type=WorkflowType.CUSTOM,
        interactions=(
            CreateViz(_viz("a", "UNIQUE_CARRIER", nominal=True)),
            CreateViz(_viz("b")),
            Link("a", "b"),
            SelectBins("a", ((top_carrier,),)),
        ),
    )
    second = Workflow(
        name="wf_b",
        workflow_type=WorkflowType.CUSTOM,
        interactions=(
            CreateViz(_viz("a", "ARR_DELAY")),
            CreateViz(_viz("b", "DISTANCE")),
        ),
    )
    return [first, second]


def _engine(engine_cls, dataset, settings):
    engine = engine_cls(dataset, settings, VirtualClock())
    engine.prepare()
    return engine


def _csv(records):
    buffer = io.StringIO()
    DetailedReport(records).to_csv(buffer)
    return buffer.getvalue()


class TestSerialEquivalence:
    def test_suite_matches_benchmark_driver(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        serial = BenchmarkDriver(
            _engine(ProgressiveEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
        ).run_suite(two_workflows)
        session = SessionDriver(
            _engine(ProgressiveEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
            two_workflows,
        ).run()
        assert _csv(session) == _csv(serial)

    def test_stepwise_equals_run(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        driver = SessionDriver(
            _engine(ColumnStoreEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
            two_workflows,
        )
        collected = []
        while not driver.finished:
            collected.extend(driver.step())
        reference = SessionDriver(
            _engine(ColumnStoreEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
            two_workflows,
        ).run()
        assert _csv(collected) == _csv(reference)
        assert collected == driver.records


class TestEventInterface:
    def test_next_event_time_is_pure(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        driver = SessionDriver(
            _engine(ProgressiveEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
            two_workflows,
        )
        clock_before = driver.clock.now()
        assert driver.next_event_time() == driver.next_event_time()
        assert driver.clock.now() == clock_before

    def test_events_nondecreasing_and_finish(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        driver = SessionDriver(
            _engine(ProgressiveEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
            two_workflows,
        )
        times = []
        while not driver.finished:
            event_time = driver.next_event_time()
            assert event_time is not None
            times.append(event_time)
            driver.step()
        assert times == sorted(times)
        assert driver.next_event_time() is None
        assert driver.step() == []

    def test_records_stream_via_on_record(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        streamed = []
        driver = SessionDriver(
            _engine(ProgressiveEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
            two_workflows,
            on_record=streamed.append,
        )
        records = driver.run()
        assert streamed == records

    def test_first_query_id_offsets_numbering(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        driver = SessionDriver(
            _engine(ProgressiveEngine, flights_dataset, tiny_settings),
            flights_oracle,
            tiny_settings,
            two_workflows[:1],
            first_query_id=100,
        )
        records = driver.run()
        assert [r.query_id for r in records] == list(
            range(100, 100 + len(records))
        )
        assert driver.next_query_id == 100 + len(records)

    def test_scale_mismatch_rejected(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        engine = _engine(ProgressiveEngine, flights_dataset, tiny_settings)
        with pytest.raises(BenchmarkError):
            SessionDriver(
                engine,
                flights_oracle,
                tiny_settings.with_(scale=tiny_settings.scale + 1),
                two_workflows,
            )


class TestLifecycle:
    def test_workflow_hooks_called_per_workflow(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        engine = _engine(ProgressiveEngine, flights_dataset, tiny_settings)
        calls = []
        original_start, original_end = engine.workflow_start, engine.workflow_end
        engine.workflow_start = lambda: (calls.append("start"), original_start())
        engine.workflow_end = lambda: (calls.append("end"), original_end())
        SessionDriver(
            engine, flights_oracle, tiny_settings, two_workflows
        ).run()
        assert calls == ["start", "end", "start", "end"]

    def test_lifecycle_false_suppresses_hooks(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        engine = _engine(ProgressiveEngine, flights_dataset, tiny_settings)
        calls = []
        engine.workflow_start = lambda: calls.append("start")
        engine.workflow_end = lambda: calls.append("end")
        SessionDriver(
            engine, flights_oracle, tiny_settings, two_workflows,
            lifecycle=False,
        ).run()
        assert calls == []

    def test_lifecycle_false_frees_speculation_hints(
        self, flights_dataset, tiny_settings, flights_oracle, two_workflows
    ):
        # Without workflow_end (shared-engine serving), the driver must
        # still tell the engine its link hints are obsolete at workflow
        # end — otherwise stale speculative tasks pin the engine's
        # speculation cap and keep consuming capacity forever.
        engine = ProgressiveEngine(
            flights_dataset, tiny_settings, VirtualClock(), speculation=True
        )
        engine.prepare()
        driver = SessionDriver(
            engine, flights_oracle, tiny_settings, two_workflows,
            lifecycle=False,
        )
        driver.run()
        assert engine._speculative == {}
        assert engine.scheduler.active_tasks() == []
