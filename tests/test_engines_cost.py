"""Tests for the engine cost models and the data-preparation model (§5.2)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.data.normalize import FLIGHTS_STAR_SPEC, normalize
from repro.data.storage import Dataset
from repro.engines.cost import (
    COLUMNSTORE_COST,
    COLUMNSTORE_PREP,
    EngineCostModel,
    ONLINEAGG_PREP,
    PROGRESSIVE_PREP,
    PreparationModel,
    SAMPLING_PREP,
)
from repro.engines.joins import num_joins, required_foreign_keys
from repro.query.filters import RangePredicate, SetPredicate
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind


def _query(bins=None, aggs=None, filter_expr=None):
    return AggQuery(
        "flights",
        bins=bins or (BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=10.0),),
        aggregates=aggs or (Aggregate(AggFunc.COUNT),),
        filter=filter_expr,
    )


class TestPreparationModel:
    """§5.2: 19 / 130 / 3 / 27 minutes at 500 M rows."""

    ROWS_500M = 500_000_000

    def test_monetdb_19_minutes(self):
        minutes = COLUMNSTORE_PREP.preparation_time(self.ROWS_500M) / 60
        assert minutes == pytest.approx(19, rel=0.05)

    def test_xdb_130_minutes(self):
        minutes = ONLINEAGG_PREP.preparation_time(self.ROWS_500M) / 60
        assert minutes == pytest.approx(130, rel=0.05)

    def test_idea_3_minutes_size_independent(self):
        assert PROGRESSIVE_PREP.preparation_time(self.ROWS_500M) == 180.0
        assert PROGRESSIVE_PREP.preparation_time(10) == 180.0

    def test_system_x_27_minutes(self):
        minutes = SAMPLING_PREP.preparation_time(self.ROWS_500M) / 60
        assert minutes == pytest.approx(27, rel=0.1)

    def test_prep_grows_with_size(self):
        for model in (COLUMNSTORE_PREP, ONLINEAGG_PREP, SAMPLING_PREP):
            assert model.preparation_time(10**9) > model.preparation_time(10**8)


class TestEngineCostModel:
    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ConfigurationError):
            EngineCostModel(scan_throughput=0.0)

    def test_more_columns_cost_more(self, flights_dataset):
        cheap = _query()
        expensive = _query(
            aggs=(Aggregate(AggFunc.AVG, "ARR_DELAY"),),
            filter_expr=RangePredicate("DISTANCE", 0, 100),
        )
        model = COLUMNSTORE_COST
        assert model.scan_column_cost(flights_dataset, expensive) > (
            model.scan_column_cost(flights_dataset, cheap)
        )

    def test_string_columns_cost_more_than_numeric(self, flights_dataset):
        numeric = _query()
        nominal = _query(bins=(BinDimension("ORIGIN", BinKind.NOMINAL),))
        model = COLUMNSTORE_COST
        assert model.scan_column_cost(flights_dataset, nominal) > (
            model.scan_column_cost(flights_dataset, numeric)
        )

    def test_selectivity_reduces_blocking_demand(self, flights_dataset):
        model = COLUMNSTORE_COST
        query = _query()
        broad = model.blocking_service_demand(
            query, flights_dataset, 10**8, 1000, qualifying_fraction=1.0
        )
        narrow = model.blocking_service_demand(
            query, flights_dataset, 10**8, 1000, qualifying_fraction=0.01
        )
        assert narrow < broad

    def test_demand_scales_linearly_with_virtual_rows(self, flights_dataset):
        model = COLUMNSTORE_COST
        query = _query()
        small = model.blocking_service_demand(query, flights_dataset, 10**8, 1000, 1.0)
        large = model.blocking_service_demand(query, flights_dataset, 10**9, 1000, 1.0)
        assert (large - model.startup_latency) == pytest.approx(
            10 * (small - model.startup_latency), rel=1e-6
        )

    def test_scale_preserves_time_ratios(self, flights_dataset):
        """The DESIGN.md §1.3 honesty rule: scaling rows and throughput by
        the same factor leaves service demands unchanged."""
        model = COLUMNSTORE_COST
        query = _query()
        demands = [
            model.blocking_service_demand(
                query, flights_dataset, 500_000_000, scale, 0.5
            )
            for scale in (100, 1000, 10_000)
        ]
        assert demands[0] == pytest.approx(demands[1], rel=1e-6)
        assert demands[1] == pytest.approx(demands[2], rel=1e-6)

    def test_sampling_rate_positive_and_join_sensitive(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        flat = Dataset.from_table(flights_table)
        model = EngineCostModel(scan_throughput=1e8, sample_throughput=1e6)
        join_query = _query(bins=(BinDimension("ORIGIN", BinKind.NOMINAL),))
        rate_flat = model.sampling_service_rate(join_query, flat, 1000)
        rate_star = model.sampling_service_rate(join_query, star, 1000)
        assert rate_flat > rate_star > 0  # FK dereference costs extra

    def test_sampling_without_sample_path_rejected(self, flights_dataset):
        model = EngineCostModel(scan_throughput=1e8)
        with pytest.raises(ConfigurationError):
            model.sampling_service_rate(_query(), flights_dataset, 1000)

    def test_normalized_string_query_cheaper(self, flights_table):
        """The §5.3 finding: star schema slightly better for string scans."""
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        flat = Dataset.from_table(flights_table)
        model = COLUMNSTORE_COST
        query = _query(
            bins=(BinDimension("ORIGIN_STATE", BinKind.NOMINAL),),
            aggs=(Aggregate(AggFunc.AVG, "ARR_DELAY"),),
        )
        demand_flat = model.blocking_service_demand(query, flat, 10**8, 1000, 0.5)
        demand_star = model.blocking_service_demand(query, star, 10**8, 1000, 0.5)
        assert demand_star < demand_flat


class TestJoins:
    def test_denormalized_needs_no_joins(self, flights_dataset):
        query = _query(bins=(BinDimension("ORIGIN", BinKind.NOMINAL),))
        assert num_joins(flights_dataset, query) == 0

    def test_normalized_counts_distinct_fks(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        query = _query(
            bins=(BinDimension("ORIGIN", BinKind.NOMINAL),),
            filter_expr=SetPredicate("ORIGIN_STATE", frozenset(["CA"])),
        )
        # ORIGIN and ORIGIN_STATE share one FK.
        assert num_joins(star, query) == 1
        fks = required_foreign_keys(star, query)
        assert fks[0].fact_column == "ORIGIN_KEY"

    def test_two_roles_are_two_joins(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        query = _query(
            bins=(BinDimension("ORIGIN", BinKind.NOMINAL),
                  BinDimension("DEST", BinKind.NOMINAL)),
        )
        assert num_joins(star, query) == 2

    def test_fact_only_query_normalized(self, flights_table):
        star = normalize(flights_table, FLIGHTS_STAR_SPEC)
        assert num_joins(star, _query()) == 0
