"""Constant-memory serving: record spooling, incremental aggregation,
rate-limited --follow output (docs/server.md's population-scale section).

The contract under test: a spooled run produces *the same information*
as a retained run — every record lands in the spill file in global
virtual-time order, the incremental aggregate matches what a full record
list would yield — while the manager returns no results and per-session
state is freed as sessions retire.
"""

import io

import pytest

from repro.common.errors import BenchmarkError
from repro.server import (
    ArrivalProcess,
    FollowPrinter,
    OpenSystemManager,
    RecordSpool,
    ServingAggregate,
    SessionManager,
    iter_spool,
    render_aggregate_report,
    run_adaptive_bench,
    run_session_bench,
)
from repro.server.manager import ArrivalProcess as _AP
from repro.server.session import SessionStream


def _record_keys(results):
    return [
        (result.session_id, record.query_id, record.end_time)
        for result in results
        for record in result.records
    ]


def _open_manager(server_ctx, **kwargs):
    arrivals = ArrivalProcess(
        0.2, 40.0, seed=server_ctx.settings.seed,
        mean_residence=25.0, max_sessions=4,
    )
    return OpenSystemManager.for_engine(
        server_ctx, "idea-sim", arrivals, policy="markov", **kwargs
    )


class TestRecordSpool:
    def test_spooled_closed_run_matches_retained(self, server_ctx, tmp_path):
        reference = SessionManager.for_engine(
            server_ctx, "idea-sim", 3, per_session=1
        ).run()
        path = tmp_path / "records.jsonl"
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 3, per_session=1,
            spool=RecordSpool(path),
        )
        assert manager.run() == []  # nothing retained
        manager.spool.close()
        spooled = [
            (sid, rec.query_id, rec.end_time)
            for sid, rec in iter_spool(path)
        ]
        retained = [
            (r.session_id, rec.query_id, rec.end_time)
            for r in reference for rec in r.records
        ]
        # Same multiset of records; spool order is global virtual-time
        # order (the grant order), retained order groups by session.
        assert sorted(spooled) == sorted(retained)
        assert manager.spool.count == len(retained)
        times = [t for _, _, t in spooled]
        assert times == sorted(times)

    def test_spill_bytes_deterministic(self, server_ctx, tmp_path):
        def run(path):
            manager = _open_manager(server_ctx, spool=RecordSpool(path))
            manager.run()
            manager.spool.close()
            return path.read_bytes()

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")

    def test_pathless_spool_counts_only(self, server_ctx):
        manager = SessionManager.for_engine(
            server_ctx, "idea-sim", 2, per_session=1, spool=RecordSpool()
        )
        manager.run()
        assert manager.spool.count > 0
        assert manager.spool.path is None

    def test_closed_spool_rejects_appends(self, tmp_path):
        spool = RecordSpool(tmp_path / "s.jsonl")
        spool.close()
        with pytest.raises(BenchmarkError):
            spool.append("session-0", object())

    def test_iter_spool_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"not": "a record line"}\n')
        with pytest.raises(BenchmarkError):
            list(iter_spool(path))

    def test_spool_requires_calendar_scheduler(self, server_ctx):
        with pytest.raises(BenchmarkError):
            SessionManager.for_engine(
                server_ctx, "idea-sim", 2, per_session=1,
                spool=RecordSpool(), scheduler="tasks",
            )
        with pytest.raises(BenchmarkError):
            _open_manager(server_ctx, spool=RecordSpool(), scheduler="tasks")


class TestServingAggregate:
    def test_open_system_aggregate_matches_retained(self, server_ctx):
        reference = _open_manager(server_ctx)
        results = reference.run()
        manager = _open_manager(server_ctx, spool=RecordSpool())
        manager.run()
        agg = manager.aggregate
        records = [rec for r in results for rec in r.records]
        assert agg.num_queries == len(records)
        assert agg.tr_violations == sum(r.tr_violated for r in records)
        assert agg.sessions_served == len(results)
        assert agg.sessions_departed == sum(
            r.departed_at is not None for r in results
        )
        assert agg.total_steps == sum(r.steps for r in results)
        counts = {}
        for result in results:
            for kind, count in result.interaction_counts.items():
                counts[kind] = counts.get(kind, 0) + count
        assert agg.interaction_counts == counts
        assert agg.virtual_makespan == max(r.end_time for r in records)
        assert agg.active_sessions == 0
        assert 1 <= agg.peak_active <= len(results)

    def test_streams_freed_as_sessions_retire(self, server_ctx):
        manager = _open_manager(server_ctx, spool=RecordSpool())
        manager.run()
        assert manager.streams == {}

    def test_shared_engine_sheds_settled_state(self, server_ctx):
        spooled = _open_manager(
            server_ctx, spool=RecordSpool(), share_engine=True
        )
        spooled.run()
        retained = _open_manager(server_ctx, share_engine=True)
        retained.run()
        # Retained runs keep every handle for reporting; spooled runs
        # release settled handles/tasks as each session retires.
        assert len(spooled._shared_engine._handles) < len(
            retained._shared_engine._handles
        )
        assert spooled.aggregate.num_queries == sum(
            len(s.records) for s in retained.streams.values()
        )

    def test_empty_aggregate_renders(self):
        agg = ServingAggregate()
        text = render_aggregate_report(agg)
        assert "queries evaluated    : 0" in text
        assert "—" in text

    def test_render_mentions_spill_path(self):
        agg = ServingAggregate()
        text = render_aggregate_report(agg, spill_path="/tmp/x.jsonl")
        assert "/tmp/x.jsonl" in text


class TestSessionStreamRetention:
    def test_retain_false_drops_records_after_subscribers(self):
        stream = SessionStream("session-0", retain=False)
        seen = []
        stream.subscribe(lambda sid, rec: seen.append((sid, rec)))
        marker = object()
        stream.push(marker)
        assert seen == [("session-0", marker)]
        assert stream.records == []
        assert len(stream) == 0


class TestLazyArrivalSchedule:
    def test_iter_schedule_matches_schedule(self, server_ctx):
        def process():
            return _AP(
                0.3, 60.0, seed=7, mean_residence=20.0, max_sessions=50
            )

        assert list(process().iter_schedule()) == process().schedule()


class TestIncrementalBench:
    def test_session_cells_match_retained(self, server_ctx):
        kwargs = dict(per_session=1, modes=("isolated",))
        retained = run_session_bench(
            server_ctx, ["idea-sim"], [2], **kwargs
        )
        incremental = run_session_bench(
            server_ctx, ["idea-sim"], [2], incremental=True, **kwargs
        )
        for a, b in zip(retained, incremental):
            assert a.num_queries == b.num_queries
            assert a.pct_tr_violated == b.pct_tr_violated
            assert a.virtual_makespan == b.virtual_makespan
            assert a.mean_latency_answered == pytest.approx(
                b.mean_latency_answered, rel=1e-12
            )
            assert a.mean_missing_bins == pytest.approx(
                b.mean_missing_bins, rel=1e-12
            )

    def test_adaptive_cells_match_retained(self, server_ctx):
        kwargs = dict(
            per_session=1, churn_modes=("open",),
            arrival_rate=0.2, horizon=40.0, residence=25.0,
        )
        retained = run_adaptive_bench(
            server_ctx, "idea-sim", ["markov"], [3], **kwargs
        )
        incremental = run_adaptive_bench(
            server_ctx, "idea-sim", ["markov"], [3],
            incremental=True, **kwargs
        )
        for a, b in zip(retained, incremental):
            assert a.sessions_served == b.sessions_served
            assert a.sessions_departed == b.sessions_departed
            assert a.num_queries == b.num_queries
            assert a.mix == b.mix
            assert a.mean_latency_answered == pytest.approx(
                b.mean_latency_answered, rel=1e-12
            )

    def test_incremental_bypasses_store(self, server_ctx, tmp_path):
        from repro.runtime import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        run_session_bench(
            server_ctx, ["idea-sim"], [1], per_session=1,
            modes=("isolated",), incremental=True, store=store,
        )
        cells = run_session_bench(
            server_ctx, ["idea-sim"], [1], per_session=1,
            modes=("isolated",), store=store,
        )
        assert not any(cell.from_cache for cell in cells)


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _Record:
    def __init__(self, query_id, end_time, tr_violated=False):
        self.query_id = query_id
        self.end_time = end_time
        self.start_time = end_time - 1.0
        self.viz_name = f"viz_{query_id}"
        self.tr_violated = tr_violated


class TestFollowPrinter:
    def test_detail_mode_prints_every_record(self):
        out = io.StringIO()
        printer = FollowPrinter(2, out=out)
        printer("session-0", _Record(0, 3.0))
        printer("session-1", _Record(1, 4.0, tr_violated=True))
        printer.close()
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert "session-0 q0 viz_0: ok" in lines[0]
        assert "session-1 q1 viz_1: VIOLATED" in lines[1]

    def test_aggregate_mode_rate_limits(self):
        out = io.StringIO()
        clock = _FakeClock()
        printer = FollowPrinter(
            100, threshold=10, interval=1.0, out=out, clock=clock
        )
        assert printer.aggregate_mode
        for i in range(50):
            clock.now = i * 0.01  # 50 records inside half a second
            printer("session-0", _Record(i, float(i)))
        assert printer.lines_emitted == 1  # only the first record's line
        clock.now = 2.0
        printer("session-0", _Record(50, 50.0))
        assert printer.lines_emitted == 2
        printer.close()
        lines = out.getvalue().splitlines()
        assert lines[-1] == (
            "  [follow] 51 queries (0 TR violated) through t=50.0s virtual"
        )

    def test_aggregate_mode_counts_violations(self):
        out = io.StringIO()
        printer = FollowPrinter(
            100, threshold=10, out=out, clock=_FakeClock()
        )
        printer("s", _Record(0, 1.0, tr_violated=True))
        printer("s", _Record(1, 2.0))
        printer.close()
        assert printer.tr_violations == 1
        assert "(1 TR violated)" in out.getvalue().splitlines()[-1]

    def test_close_without_records_is_silent(self):
        out = io.StringIO()
        printer = FollowPrinter(100, threshold=10, out=out)
        printer.close()
        assert out.getvalue() == ""
