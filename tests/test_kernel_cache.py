"""Kernel-cache semantics: LRU order, counters, portable keys, isolation.

The process-wide :class:`~repro.engines.kernel_cache.KernelCache` must be
deterministic infrastructure: digest keys identical across interpreter
hash seeds (the PR 1 regression, now at the cache layer), strict LRU
eviction, hit/miss/eviction counters mirrored into the ``obs`` metrics
snapshot only while observability is on, and no leakage between datasets
whose content fingerprints differ.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.common.errors import BenchmarkError
from repro.data.storage import Dataset, Table
from repro.engines.kernel_cache import (
    DEFAULT_KERNEL_CACHE_CAPACITY,
    KernelCache,
    _env_capacity,
    clear_kernel_cache,
    configure_kernel_cache,
    get_kernel,
    kernel_cache,
    kernels_enabled,
    set_kernels_enabled,
)
from repro.obs import get_metrics, get_tracer, observed
from repro.query.kernels import CompiledQueryKernel
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind


def _toy_dataset(name="toy", values=(1.0, 2.0, 3.0, 4.0)):
    table = Table(
        name,
        {
            "group": np.array(["a", "b", "a", "b"]),
            "value": np.array(values, dtype=np.float64),
        },
    )
    return Dataset.from_table(table)


def _query(table="toy", field="value", func=AggFunc.SUM):
    return AggQuery(
        table=table,
        bins=(BinDimension("group", BinKind.NOMINAL),),
        aggregates=(Aggregate(func, None if func is AggFunc.COUNT else field),),
    )


class TestLRUSemantics:
    def test_hit_returns_same_object_and_counts(self):
        cache = KernelCache(capacity=4)
        dataset = _toy_dataset()
        query = _query()
        first = cache.get(dataset, query)
        second = cache.get(dataset, query)
        assert first is second
        assert cache.stats() == {
            "capacity": 4,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_eviction_order_is_least_recently_used(self):
        cache = KernelCache(capacity=2)
        dataset = _toy_dataset()
        q_sum = _query(func=AggFunc.SUM)
        q_avg = _query(func=AggFunc.AVG)
        q_cnt = _query(func=AggFunc.COUNT)

        k_sum = cache.get(dataset, q_sum)
        cache.get(dataset, q_avg)
        # Touch SUM so AVG becomes the least recently used entry...
        assert cache.get(dataset, q_sum) is k_sum
        # ...then overflow: AVG must be the one evicted, SUM survives.
        cache.get(dataset, q_cnt)
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2
        assert cache.get(dataset, q_sum) is k_sum  # hit, not recompiled
        assert cache.stats()["misses"] == 3  # sum, avg, cnt
        cache.get(dataset, q_avg)  # evicted above, so this recompiles
        assert cache.stats()["misses"] == 4

    def test_clear_resets_entries_and_counters(self):
        cache = KernelCache(capacity=2)
        dataset = _toy_dataset()
        cache.get(dataset, _query())
        cache.get(dataset, _query())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "capacity": 2,
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(BenchmarkError):
            KernelCache(capacity=0)


class TestMetricsCounters:
    def _counter_values(self):
        snapshot = get_metrics().snapshot()
        return {
            entry["name"]: entry["value"]
            for entry in snapshot["metrics"]
            if entry["name"].startswith("repro_kernel_cache_")
        }

    def test_counters_published_while_observed(self):
        cache = KernelCache(capacity=1)
        dataset = _toy_dataset()
        with observed(enabled=True):
            assert get_tracer().enabled
            cache.get(dataset, _query(func=AggFunc.SUM))  # miss
            cache.get(dataset, _query(func=AggFunc.SUM))  # hit
            cache.get(dataset, _query(func=AggFunc.AVG))  # miss + eviction
            values = self._counter_values()
        assert values == {
            "repro_kernel_cache_hits_total": 1,
            "repro_kernel_cache_misses_total": 2,
            "repro_kernel_cache_evictions_total": 1,
        }

    def test_counters_silent_when_observability_disabled(self):
        cache = KernelCache(capacity=1)
        dataset = _toy_dataset()
        assert not get_tracer().enabled
        cache.get(dataset, _query())
        cache.get(dataset, _query())
        assert self._counter_values() == {}
        # Plain attributes still count regardless.
        assert cache.hits == 1 and cache.misses == 1

    def test_compile_lands_in_profiler_stage(self):
        from repro.obs import get_profiler

        dataset = _toy_dataset()
        with observed(enabled=True):
            KernelCache(capacity=1).get(dataset, _query())
            report = get_profiler().report()
        assert "compile" in report


class TestPortableKeys:
    def test_key_components_are_content_digests(self):
        dataset = _toy_dataset()
        query = _query()
        key = KernelCache.key_for(dataset, query)
        assert isinstance(key, tuple) and len(key) == 2
        # Dataset fingerprints are 32 hex chars, query keys the full 64;
        # both are content digests, never id()/hash()-derived.
        for part in key:
            assert isinstance(part, str) and len(part) in (32, 64)
            int(part, 16)

    def test_key_identical_across_hash_seeds(self):
        # hash() is salted per process; digest keys must not be. Mirror of
        # the PR 1 query_cache_key regression, at the cache layer.
        program = (
            "import numpy as np\n"
            "from repro.data.storage import Dataset, Table\n"
            "from repro.engines.kernel_cache import KernelCache\n"
            "from repro.query.model import AggFunc, Aggregate, AggQuery, "
            "BinDimension, BinKind\n"
            "from repro.query.filters import SetPredicate\n"
            "table = Table('toy', {'group': np.array(['a', 'b', 'a', 'b']),"
            " 'value': np.array([1.0, 2.0, 3.0, 4.0])})\n"
            "query = AggQuery('toy', bins=(BinDimension('group', BinKind.NOMINAL),),"
            " aggregates=(Aggregate(AggFunc.SUM, 'value'),),"
            " filter=SetPredicate('group', frozenset(['b', 'a'])))\n"
            "print(KernelCache.key_for(Dataset.from_table(table), query))\n"
        )
        keys = []
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            keys.append(
                subprocess.run(
                    [sys.executable, "-c", program],
                    capture_output=True,
                    text=True,
                    check=True,
                    env=env,
                    cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                ).stdout.strip()
            )
        assert keys[0] == keys[1] == keys[2]


class TestDatasetIsolation:
    def test_same_query_different_data_distinct_kernels(self):
        cache = KernelCache(capacity=8)
        a = _toy_dataset(values=(1.0, 2.0, 3.0, 4.0))
        b = _toy_dataset(values=(1.0, 2.0, 3.0, 5.0))  # one cell differs
        assert a.fingerprint() != b.fingerprint()
        query = _query()
        kernel_a = cache.get(a, query)
        kernel_b = cache.get(b, query)
        assert kernel_a is not kernel_b
        assert cache.stats()["misses"] == 2
        # Answers reflect each dataset's own rows, not a shared entry.
        assert kernel_a.evaluate(None).sums[0][1] != kernel_b.evaluate(None).sums[0][1]

    def test_identical_content_shares_a_kernel(self):
        cache = KernelCache(capacity=8)
        a = _toy_dataset()
        b = _toy_dataset()  # distinct object, identical bytes
        assert a.fingerprint() == b.fingerprint()
        assert cache.get(a, _query()) is cache.get(b, _query())
        assert cache.stats()["hits"] == 1


class TestProcessWideToggles:
    def test_get_kernel_respects_disable_toggle(self):
        dataset = _toy_dataset()
        query = _query()
        previous = set_kernels_enabled(False)
        try:
            assert not kernels_enabled()
            assert get_kernel(dataset, query) is None
        finally:
            set_kernels_enabled(previous)
        assert isinstance(get_kernel(dataset, query), CompiledQueryKernel)

    def test_configure_replaces_process_cache(self):
        original = kernel_cache()
        try:
            replaced = configure_kernel_cache(3)
            assert kernel_cache() is replaced
            assert replaced.capacity == 3
            clear_kernel_cache()
            assert len(kernel_cache()) == 0
        finally:
            configure_kernel_cache(original.capacity)

    def test_env_capacity_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_SIZE", "not-a-number")
        with pytest.raises(BenchmarkError):
            _env_capacity()
        monkeypatch.setenv("REPRO_KERNEL_CACHE_SIZE", "0")
        with pytest.raises(BenchmarkError):
            _env_capacity()
        monkeypatch.setenv("REPRO_KERNEL_CACHE_SIZE", "12")
        assert _env_capacity() == 12
        monkeypatch.delenv("REPRO_KERNEL_CACHE_SIZE")
        assert _env_capacity() == DEFAULT_KERNEL_CACHE_CAPACITY
