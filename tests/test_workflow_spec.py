"""Tests for workflow/interaction JSON specifications."""

import json

import pytest

from repro.common.errors import WorkflowError
from repro.query.filters import RangePredicate
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import (
    CreateViz,
    DiscardViz,
    Interaction,
    Link,
    SelectBins,
    SetFilter,
    VizSpec,
    Workflow,
    WorkflowType,
    load_suite,
    save_suite,
)


@pytest.fixture
def viz():
    return VizSpec(
        name="v0",
        source="flights",
        bins=(BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=10.0),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )


@pytest.fixture
def workflow(viz):
    return Workflow(
        name="wf",
        workflow_type=WorkflowType.CUSTOM,
        interactions=(
            CreateViz(viz),
            SetFilter("v0", RangePredicate("DISTANCE", 0, 100)),
            SetFilter("v0", None),
            SelectBins("v0", ((3,), (4,))),
            DiscardViz("v0"),
        ),
    )


class TestVizSpec:
    def test_base_query(self, viz):
        query = viz.base_query(RangePredicate("DISTANCE", 0, 10))
        assert query.table == "flights"
        assert query.filter == RangePredicate("DISTANCE", 0, 10)
        assert query.bins == viz.bins

    def test_validation(self):
        with pytest.raises(WorkflowError):
            VizSpec("", "t", (BinDimension("c", BinKind.NOMINAL),),
                    (Aggregate(AggFunc.COUNT),))
        with pytest.raises(WorkflowError):
            VizSpec("v", "t", (), (Aggregate(AggFunc.COUNT),))
        with pytest.raises(WorkflowError):
            VizSpec("v", "t", (BinDimension("c", BinKind.NOMINAL),), ())

    def test_dict_round_trip(self, viz):
        assert VizSpec.from_dict(viz.to_dict()) == viz


class TestInteractionSerialization:
    def test_round_trip_each_kind(self, workflow):
        for interaction in workflow.interactions:
            payload = json.loads(json.dumps(interaction.to_dict()))
            assert Interaction.from_dict(payload) == interaction

    def test_link_round_trip(self):
        link = Link("a", "b")
        assert Interaction.from_dict(link.to_dict()) == link

    def test_selection_keys_preserve_types(self):
        select = SelectBins("v", ((3, "CA"), (-2, "NY")))
        parsed = Interaction.from_dict(json.loads(json.dumps(select.to_dict())))
        assert parsed.keys == ((3, "CA"), (-2, "NY"))
        assert isinstance(parsed.keys[0][0], int)
        assert isinstance(parsed.keys[0][1], str)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkflowError):
            Interaction.from_dict({"type": "teleport"})


class TestWorkflow:
    def test_validation(self):
        with pytest.raises(WorkflowError):
            Workflow("", WorkflowType.MIXED, (DiscardViz("x"),))
        with pytest.raises(WorkflowError):
            Workflow("w", WorkflowType.MIXED, ())

    def test_json_file_round_trip(self, workflow, tmp_path):
        path = tmp_path / "wf.json"
        workflow.to_json(path)
        assert Workflow.from_json(path) == workflow

    def test_suite_save_load(self, workflow, tmp_path):
        other = Workflow("wf2", workflow.workflow_type, workflow.interactions)
        paths = save_suite([workflow, other], tmp_path / "suite")
        assert len(paths) == 2
        loaded = load_suite(tmp_path / "suite")
        assert loaded == [workflow, other]
