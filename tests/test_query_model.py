"""Tests for the query model (AggQuery, BinDimension, Aggregate, results)."""

import json

import pytest

from repro.common.errors import QueryError
from repro.data.schema import profile_table
from repro.query.filters import RangePredicate
from repro.query.model import (
    AggFunc,
    Aggregate,
    AggQuery,
    BinDimension,
    BinKind,
    QueryResult,
    make_count_query,
    resolve_query,
)


class TestBinDimension:
    def test_width_based_is_resolved(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, width=10.0, reference=5.0)
        assert dim.is_resolved
        assert dim.bin_interval(0) == (5.0, 15.0)
        assert dim.bin_interval(-1) == (-5.0, 5.0)

    def test_bin_count_is_unresolved(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, bin_count=10)
        assert not dim.is_resolved

    def test_resolution(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, bin_count=10)
        resolved = dim.resolved(0.0, 100.0)
        assert resolved.width == pytest.approx(10.0)
        assert resolved.reference == 0.0
        assert resolved.is_resolved

    def test_resolution_of_degenerate_range(self):
        dim = BinDimension("v", BinKind.QUANTITATIVE, bin_count=4)
        resolved = dim.resolved(5.0, 5.0)
        assert resolved.width > 0

    def test_nominal_is_always_resolved(self):
        dim = BinDimension("c", BinKind.NOMINAL)
        assert dim.is_resolved

    def test_nominal_has_no_intervals(self):
        with pytest.raises(QueryError):
            BinDimension("c", BinKind.NOMINAL).bin_interval(0)

    @pytest.mark.parametrize("kwargs", [
        dict(kind=BinKind.QUANTITATIVE),                      # no width/count
        dict(kind=BinKind.QUANTITATIVE, width=0.0),           # zero width
        dict(kind=BinKind.QUANTITATIVE, width=-1.0),          # negative width
        dict(kind=BinKind.QUANTITATIVE, bin_count=0),         # zero bins
        dict(kind=BinKind.NOMINAL, width=1.0),                # nominal + width
        dict(kind=BinKind.NOMINAL, bin_count=5),              # nominal + count
    ])
    def test_validation(self, kwargs):
        with pytest.raises(QueryError):
            BinDimension("v", **kwargs)

    def test_dict_round_trip(self):
        for dim in (
            BinDimension("v", BinKind.QUANTITATIVE, width=2.5, reference=-10.0),
            BinDimension("v", BinKind.QUANTITATIVE, bin_count=25),
            BinDimension("c", BinKind.NOMINAL),
        ):
            assert BinDimension.from_dict(dim.to_dict()) == dim


class TestAggregate:
    def test_count_takes_no_field(self):
        assert Aggregate(AggFunc.COUNT).label == "count"
        with pytest.raises(QueryError):
            Aggregate(AggFunc.COUNT, "v")

    def test_others_require_field(self):
        assert Aggregate(AggFunc.AVG, "x").label == "avg_x"
        with pytest.raises(QueryError):
            Aggregate(AggFunc.SUM)

    def test_dict_round_trip(self):
        for agg in (Aggregate(AggFunc.COUNT), Aggregate(AggFunc.MAX, "v")):
            assert Aggregate.from_dict(agg.to_dict()) == agg


class TestAggQuery:
    def test_basic_properties(self, carrier_count_query):
        assert carrier_count_query.num_bin_dims == 1
        assert carrier_count_query.agg_type == "count"
        assert carrier_count_query.binning_types == ("nominal",)
        assert carrier_count_query.is_resolved

    def test_referenced_columns_deduplicated(self):
        query = AggQuery(
            "t",
            bins=(BinDimension("a", BinKind.QUANTITATIVE, width=1.0),),
            aggregates=(Aggregate(AggFunc.AVG, "a"), Aggregate(AggFunc.COUNT)),
            filter=RangePredicate("b", 0, 1),
        )
        assert query.referenced_columns() == ("a", "b")

    def test_requires_bins_and_aggregates(self):
        with pytest.raises(QueryError):
            AggQuery("t", bins=(), aggregates=(Aggregate(AggFunc.COUNT),))
        with pytest.raises(QueryError):
            AggQuery(
                "t",
                bins=(BinDimension("c", BinKind.NOMINAL),),
                aggregates=(),
            )

    def test_rejects_three_dimensions(self):
        dims = tuple(
            BinDimension(name, BinKind.QUANTITATIVE, width=1.0)
            for name in "abc"
        )
        with pytest.raises(QueryError):
            AggQuery("t", bins=dims, aggregates=(Aggregate(AggFunc.COUNT),))

    def test_rejects_duplicate_bin_fields(self):
        dims = (
            BinDimension("a", BinKind.QUANTITATIVE, width=1.0),
            BinDimension("a", BinKind.QUANTITATIVE, width=2.0),
        )
        with pytest.raises(QueryError):
            AggQuery("t", bins=dims, aggregates=(Aggregate(AggFunc.COUNT),))

    def test_hashable_and_json_round_trip(self, delay_avg_query):
        payload = json.dumps(delay_avg_query.to_dict())
        assert AggQuery.from_dict(json.loads(payload)) == delay_avg_query
        assert hash(delay_avg_query) == hash(AggQuery.from_dict(json.loads(payload)))

    def test_make_count_query(self):
        query = make_count_query("t", BinDimension("c", BinKind.NOMINAL))
        assert query.aggregates == (Aggregate(AggFunc.COUNT),)


class TestResolveQuery:
    def test_resolves_bin_count_against_profiles(self, flights_table):
        profiles = profile_table(flights_table)
        query = AggQuery(
            "flights",
            bins=(BinDimension("DISTANCE", BinKind.QUANTITATIVE, bin_count=20),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        resolved = resolve_query(query, profiles)
        assert resolved.is_resolved
        dim = resolved.bins[0]
        assert dim.reference == profiles["DISTANCE"].minimum
        assert dim.width == pytest.approx(profiles["DISTANCE"].span / 20)

    def test_resolved_query_passes_through(self, carrier_count_query):
        assert resolve_query(carrier_count_query, {}) is carrier_count_query

    def test_missing_profile_rejected(self):
        query = AggQuery(
            "t",
            bins=(BinDimension("ghost", BinKind.QUANTITATIVE, bin_count=5),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        )
        with pytest.raises(QueryError):
            resolve_query(query, {})


class TestQueryResult:
    def test_accessors(self, carrier_count_query):
        result = QueryResult(
            query=carrier_count_query,
            values={("AA",): (10.0,), ("BB",): (5.0,)},
            rows_processed=100,
            fraction=0.5,
        )
        assert result.num_bins == 2
        assert result.value_of(("AA",)) == 10.0
        with pytest.raises(KeyError):
            result.value_of(("ZZ",))
