"""Framework-level tests for the determinism lint: pragmas, baseline,
policy tiers, reporters, and the CLI exit-code contract."""

import json

import pytest

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import run_lint
from repro.analysis.policy import DEFAULT_POLICY, Policy
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.reporters import JSON_SCHEMA_VERSION, render_text
from repro.cli import main


WALL_READ = "import time\n\n\ndef now():\n    return time.time()\n"


# ---------------------------------------------------------------- pragmas


class TestPragmas:
    def test_trailing_pragma_covers_its_own_line(self):
        sheet = parse_pragmas(
            "import time\n"
            "t = time.time()  # repro: allow[DET001] -- wall pacing only\n"
        )
        assert not sheet.problems
        (pragma,) = sheet.pragmas
        assert pragma.applies_to == (2,)
        assert pragma.rule_ids == ("DET001",)
        assert pragma.reason == "wall pacing only"

    def test_standalone_pragma_covers_next_line(self):
        sheet = parse_pragmas(
            "# repro: allow[DET001] -- wall pacing only\n"
            "t = 1\n"
        )
        (pragma,) = sheet.pragmas
        assert pragma.applies_to == (1, 2)

    def test_multiple_rule_ids(self):
        sheet = parse_pragmas("# repro: allow[DET001,DET003] -- both fine\n")
        assert sheet.pragmas[0].rule_ids == ("DET001", "DET003")

    def test_missing_reason_is_a_problem_not_a_pragma(self):
        sheet = parse_pragmas("t = 1  # repro: allow[DET001]\n")
        assert not sheet.pragmas
        assert "justification" in sheet.problems[0][1]

    def test_invalid_rule_id_is_a_problem(self):
        sheet = parse_pragmas("# repro: allow[det1] -- nope\n")
        assert not sheet.pragmas
        assert "invalid rule id" in sheet.problems[0][1]

    def test_malformed_attempt_is_a_problem(self):
        sheet = parse_pragmas("# repro: allowDET001 -- missing brackets\n")
        assert not sheet.pragmas
        assert "malformed" in sheet.problems[0][1]

    def test_prose_mentioning_the_syntax_is_not_a_pragma(self):
        # The grammar is anchored at the start of the comment.
        sheet = parse_pragmas("#: docs say ``# repro: allow[ID] -- why``\n")
        assert not sheet.pragmas
        assert not sheet.problems

    def test_pragma_in_string_literal_is_ignored(self):
        sheet = parse_pragmas('s = "# repro: allow[DET001] -- nope"\n')
        assert not sheet.pragmas
        assert not sheet.problems

    def test_suppresses_marks_used(self):
        sheet = parse_pragmas("t = 1  # repro: allow[DET001] -- why\n")
        assert sheet.unused()
        assert sheet.suppresses(1, "DET001") is not None
        assert not sheet.unused()
        assert sheet.suppresses(1, "DET002") is None

    def test_unused_pragma_becomes_det000(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("# repro: allow[DET001] -- stale\nX = 1\n")
        result = run_lint([mod])
        assert [f.rule for f in result.findings] == ["DET000"]
        assert "unused suppression" in result.findings[0].message

    def test_det000_cannot_be_suppressed(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "# repro: allow[DET000] -- trying to silence the meta rule\n"
            "X = 1\n"
        )
        result = run_lint([mod])
        # The pragma suppresses nothing (DET000 is emitted after pragma
        # application), so it is itself reported as unused.
        assert [f.rule for f in result.findings] == ["DET000"]

    def test_pragma_round_trip_suppresses_finding(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "import time\n"
            "\n"
            "\n"
            "def now():\n"
            "    return time.time()  # repro: allow[DET001] -- pacing only\n"
        )
        result = run_lint([mod])
        assert not result.findings
        (finding, pragma) = result.pragma_suppressed[0]
        assert finding.rule == "DET001"
        assert pragma.reason == "pacing only"


# ---------------------------------------------------------------- baseline


class TestBaseline:
    def _findings(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(WALL_READ)
        return mod, run_lint([mod]).findings

    def test_save_load_round_trip_absorbs(self, tmp_path):
        mod, findings = self._findings(tmp_path)
        assert findings
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, findings)
        result = run_lint([mod], baseline=load_baseline(baseline_file))
        assert not result.findings
        assert len(result.baseline_suppressed) == len(findings)
        assert not result.stale_baseline
        assert result.exit_code(strict=True) == 0

    def test_saved_bytes_are_deterministic(self, tmp_path):
        _mod, findings = self._findings(tmp_path)
        a = save_baseline(tmp_path / "a.json", findings)
        b = save_baseline(tmp_path / "b.json", list(reversed(findings)))
        assert a == b

    def test_count_budget_runs_out(self, tmp_path):
        mod, findings = self._findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, findings)
        # A second instance of the same pattern exceeds the budget.
        mod.write_text(WALL_READ + "\n\ndef later():\n    return time.time()\n")
        result = run_lint([mod], baseline=load_baseline(baseline_file))
        assert len(result.findings) == 1
        assert result.findings[0].rule == "DET001"

    def test_stale_entries_fail_only_under_strict(self, tmp_path):
        mod, findings = self._findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, findings)
        mod.write_text("X = 1\n")  # debt paid
        result = run_lint([mod], baseline=load_baseline(baseline_file))
        assert not result.findings
        assert result.stale_baseline
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1

    def test_meta_findings_are_never_baselined(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("# repro: allow[DET001] -- stale\nX = 1\n")
        det000 = run_lint([mod]).findings
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, det000)
        result = run_lint([mod], baseline=load_baseline(baseline_file))
        assert [f.rule for f in result.findings] == ["DET000"]

    def test_load_rejects_bad_json(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_load_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_load_rejects_missing_entries(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 1}))
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_empty_baseline_absorbs_nothing(self):
        baseline = Baseline([])
        assert baseline.entry_count() == 0
        assert baseline.stale_entries() == []


# ------------------------------------------------------------------ policy


class TestPolicyTiers:
    def test_det003_fires_only_in_serialization_tier(self, tmp_path):
        body = "def f(d):\n    return [k for k in d.keys()]\n"
        obs = tmp_path / "pkg" / "obs" / "mod.py"
        other = tmp_path / "pkg" / "other" / "mod.py"
        for mod in (obs, other):
            mod.parent.mkdir(parents=True, exist_ok=True)
            mod.write_text(body)
        flagged = run_lint([obs], policy=DEFAULT_POLICY)
        clean = run_lint([other], policy=DEFAULT_POLICY)
        assert [f.rule for f in flagged.findings] == ["DET003"]
        assert not clean.findings

    def test_clock_authority_module_is_exempt_from_det001(self, tmp_path):
        clock = tmp_path / "common" / "clock.py"
        clock.parent.mkdir(parents=True)
        clock.write_text(WALL_READ)
        elsewhere = tmp_path / "common" / "other.py"
        elsewhere.write_text(WALL_READ)
        assert not run_lint([clock], policy=DEFAULT_POLICY).findings
        assert run_lint([elsewhere], policy=DEFAULT_POLICY).findings

    def test_rng_authority_module_is_exempt_from_det004(self, tmp_path):
        rng = tmp_path / "common" / "rng.py"
        rng.parent.mkdir(parents=True)
        body = "import random\nX = random.random()\n"
        rng.write_text(body)
        elsewhere = tmp_path / "common" / "other.py"
        elsewhere.write_text(body)
        assert not run_lint([rng], policy=DEFAULT_POLICY).findings
        assert run_lint([elsewhere], policy=DEFAULT_POLICY).findings

    def test_policy_tiers_for_reports_matching_tiers(self):
        tiers = DEFAULT_POLICY.tiers_for("src/repro/obs/tracer.py")
        assert "serialization" in tiers


# --------------------------------------------------------------- reporters


class TestReporters:
    def test_text_report_shape(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(WALL_READ)
        text = render_text(run_lint([mod]))
        assert "DET001[wall-clock]" in text
        assert "determinism lint: FAILED" in text

    def test_clean_text_report(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("X = 1\n")
        text = render_text(run_lint([mod]))
        assert "0 finding(s)" in text
        assert "determinism lint: CLEAN" in text

    def test_json_schema(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(WALL_READ)
        code = main(["lint", str(mod), "--json", "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["schema_version"] == JSON_SCHEMA_VERSION
        assert payload["tool"] == "repro-lint"
        assert set(payload) == {
            "schema_version", "tool", "files_scanned", "exit_code", "strict",
            "findings", "counts_by_rule", "suppressed", "stale_baseline",
            "parse_errors",
        }
        assert payload["exit_code"] == 1
        assert payload["counts_by_rule"] == {"DET001": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path", "line", "col", "rule", "message", "snippet",
        }
        assert set(payload["suppressed"]) == {"pragma", "baseline"}

    def test_json_is_byte_deterministic(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(WALL_READ)
        main(["lint", str(mod), "--json", "--no-baseline"])
        first = capsys.readouterr().out
        main(["lint", str(mod), "--json", "--no-baseline"])
        assert capsys.readouterr().out == first


# --------------------------------------------------------------------- CLI


class TestCliContract:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("X = 1\n")
        assert main(["lint", str(mod), "--no-baseline"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(WALL_READ)
        assert main(["lint", str(mod), "--no-baseline"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["lint", "no/such/dir", "--no-baseline"]) == 2

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("def broken(:\n")
        assert main(["lint", str(mod), "--no-baseline"]) == 2

    def test_exit_two_on_unreadable_baseline(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("X = 1\n")
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert main(["lint", str(mod), "--baseline", str(bad)]) == 2

    def test_exit_two_on_missing_explicit_baseline(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("X = 1\n")
        missing = tmp_path / "nope.json"
        assert main(["lint", str(mod), "--baseline", str(missing)]) == 2

    def test_baseline_flag_round_trip(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(WALL_READ)
        findings = run_lint([mod]).findings
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, findings)
        code = main(["lint", str(mod), "--baseline", str(baseline_file),
                     "--strict"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 baselined" in out

    def test_strict_fails_stale_baseline(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(WALL_READ)
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, run_lint([mod]).findings)
        mod.write_text("X = 1\n")
        args = ["lint", str(mod), "--baseline", str(baseline_file)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--strict"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005",
                        "DET006"):
            assert rule_id in out
