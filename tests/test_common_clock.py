"""Tests for the clock abstraction (virtual and wall)."""

import time

import pytest

from repro.common.clock import VirtualClock, WallClock
from repro.common.errors import EngineError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(EngineError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_advance_rejects_negative(self):
        clock = VirtualClock()
        with pytest.raises(EngineError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(3.25)
        assert clock.now() == pytest.approx(3.25)

    def test_advance_to_rejects_past(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        with pytest.raises(EngineError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now() == pytest.approx(2.0)

    def test_is_virtual(self):
        assert VirtualClock().is_virtual is True

    def test_never_moves_without_advance(self):
        clock = VirtualClock()
        before = clock.now()
        time.sleep(0.01)
        assert clock.now() == before


class TestWallClock:
    def test_moves_with_real_time(self):
        clock = WallClock()
        first = clock.now()
        time.sleep(0.01)
        assert clock.now() > first

    def test_advance_sleeps(self):
        clock = WallClock()
        before = clock.now()
        clock.advance(0.02)
        assert clock.now() - before >= 0.015

    def test_advance_zero_returns_immediately(self):
        clock = WallClock()
        start = time.monotonic()
        clock.advance(0.0)
        assert time.monotonic() - start < 0.05

    def test_advance_rejects_negative(self):
        with pytest.raises(EngineError):
            WallClock().advance(-0.5)

    def test_is_not_virtual(self):
        assert WallClock().is_virtual is False
