"""NaN canonicalization at the deterministic-CSV serialization boundary.

``repro report snapshot``/``diff`` (:mod:`repro.runtime.regression`)
compares report CSVs **byte-wise** across git revisions, so any
formatting drift in how a NaN (an empty-latency cell, a zero-record
cell's percentage) reaches the CSV would surface as a *false* behavior
regression. :func:`repro.common.fingerprint.fmt_cell` is the single
boundary: every NaN — whatever numeric type carries it — serializes to
exactly one token (the empty cell), infinities to ``inf``/``-inf``, and
these tests pin that contract end to end: helper, report CSVs, cache
round trip, and the regression differ itself.
"""

import math

import numpy as np
import pytest

from repro.common.fingerprint import fmt_cell
from repro.server.report import (
    AdaptiveBenchCell,
    SessionBenchCell,
    adaptive_bench_csv_text,
    render_adaptive_bench,
    render_session_bench,
    session_bench_csv_text,
)


class TestFmtCell:
    @pytest.mark.parametrize("value", [
        None,
        float("nan"),
        float("-nan"),
        np.float64("nan"),
        np.float32("nan"),  # not a `float` subclass: the historical leak
        np.float16("nan"),
    ])
    def test_every_nan_is_the_empty_cell(self, value):
        assert fmt_cell(value) == ""

    @pytest.mark.parametrize("value, expected", [
        (float("inf"), "inf"),
        (float("-inf"), "-inf"),
        (np.float32("inf"), "inf"),
        (np.float64("-inf"), "-inf"),
    ])
    def test_infinities_are_canonical_tokens(self, value, expected):
        assert fmt_cell(value) == expected

    @pytest.mark.parametrize("value, expected", [
        (0, "0.000000"),
        (1.5, "1.500000"),
        (np.float32(0.25), "0.250000"),
        (np.float64(-3.125), "-3.125000"),
    ])
    def test_finite_values_keep_six_decimals(self, value, expected):
        assert fmt_cell(value) == expected


def _empty_session_cell() -> SessionBenchCell:
    """A cell whose run produced zero records — every mean is NaN."""
    nan = float("nan")
    return SessionBenchCell(
        engine="idea-sim", sessions=1, mode="shared",
        workflows_per_session=1, num_queries=0,
        pct_tr_violated=nan, mean_missing_bins=nan,
        mean_latency_answered=nan, virtual_makespan=0.0,
    )


def _empty_adaptive_cell() -> AdaptiveBenchCell:
    nan = float("nan")
    return AdaptiveBenchCell(
        engine="idea-sim", policy="markov", sessions=1, churn="open",
        workflows_per_session=1, sessions_served=1, sessions_departed=1,
        num_queries=0, pct_tr_violated=nan, mean_latency_answered=nan,
        virtual_makespan=0.0, mix={},
    )


class TestReportCsvs:
    def test_session_bench_csv_has_no_nan_token(self):
        text = session_bench_csv_text([_empty_session_cell()])
        assert "nan" not in text.lower()
        assert "inf" not in text.lower()
        # Empty-latency cell renders as an empty CSV field, not a token.
        assert ",,," in text

    def test_adaptive_csv_has_no_nan_token(self):
        text = adaptive_bench_csv_text([_empty_adaptive_cell()])
        assert "nan" not in text.lower()

    def test_numpy_float32_cell_cannot_leak_nan(self):
        cell = _empty_session_cell()
        cell.mean_latency_answered = np.float32("nan")
        text = session_bench_csv_text([cell])
        assert "nan" not in text.lower()

    def test_renders_show_dash_not_nan(self):
        session_table = render_session_bench([_empty_session_cell()])
        adaptive_table = render_adaptive_bench([_empty_adaptive_cell()])
        assert "nan" not in session_table.lower()
        assert "nan" not in adaptive_table.lower()
        assert "—" in session_table
        assert "—" in adaptive_table

    def test_cache_round_trip_is_byte_identical(self):
        # Snapshot/diff compares bytes; a cell restored from the
        # artifact-store JSON payload (NaN travels as a JSON `NaN`
        # token) must re-render the exact same CSV bytes.
        import json

        cell = _empty_session_cell()
        payload = json.loads(json.dumps(cell.payload(), allow_nan=True))
        restored = SessionBenchCell.from_payload(payload, from_cache=True)
        assert math.isnan(restored.mean_latency_answered)
        assert (
            session_bench_csv_text([restored])
            == session_bench_csv_text([cell])
        )


class TestRegressionDiff:
    def test_fresh_vs_restored_snapshots_do_not_diff(self, tmp_path):
        import json

        from repro.runtime.regression import diff_revisions, snapshot

        cell = _empty_session_cell()
        fresh = tmp_path / "fresh.csv"
        fresh.write_text(session_bench_csv_text([cell]), encoding="utf-8",
                         newline="")
        payload = json.loads(json.dumps(cell.payload(), allow_nan=True))
        restored_cell = SessionBenchCell.from_payload(payload)
        restored = tmp_path / "restored.csv"
        restored.write_text(session_bench_csv_text([restored_cell]),
                            encoding="utf-8", newline="")
        regress = tmp_path / "regress"
        snapshot(regress, "aaa", "sessions", fresh)
        snapshot(regress, "bbb", "sessions", restored)
        identical, report = diff_revisions(regress, "aaa", "bbb")
        assert identical, report
