"""Setuptools shim.

All project metadata lives in pyproject.toml. This file exists so that
``pip install -e . --no-use-pep517`` works in offline environments where
the ``wheel`` package (required for PEP 660 editable installs) is not
available.
"""

from setuptools import setup

setup()
