"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

Every benchmark — the pytest-style figure/table regenerators and the
standalone acceptance scripts alike — drops a small JSON file next to
its rendered text artifact in ``benchmarks/results/``, so CI (or any
downstream tooling) can consume pass/fail status and headline numbers
without parsing human-oriented tables. The shape is deliberately flat:

* ``bench`` — the benchmark name (``BENCH_<bench>.json``);
* ``artifact`` — the text artifact the numbers were rendered into;
* ``artifact_sha256`` / ``artifact_bytes`` — identity of that text, so
  a diff between two CI runs is a one-field comparison;
* everything else — benchmark-specific measurements (wall seconds,
  speedups, overhead ratios, ok flags).

Keys are sorted and floats are written as-is, so two identical runs
produce identical JSON bytes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path


def write_bench_json(results_dir: Path, bench: str, payload: dict) -> Path:
    """Write ``results_dir/BENCH_<bench>.json`` and return its path."""
    path = Path(results_dir) / f"BENCH_{bench}.json"
    data = {"bench": bench}
    data.update(payload)
    path.write_text(
        json.dumps(data, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def artifact_identity(text: str) -> dict:
    """The ``artifact_sha256``/``artifact_bytes`` pair for a rendered text."""
    raw = text.encode("utf-8")
    return {
        "artifact_sha256": hashlib.sha256(raw).hexdigest(),
        "artifact_bytes": len(raw),
    }
