"""Fig. 6d — proportion of missing bins by system and workflow type.

Paper artifact: for each engine and each of the four workflow types
(independent browsing, sequential, 1:N, N:1), the mean proportion of
missing bins at a fixed TR.

Expected shape (§5.2): "as none of the systems … use speculative execution
by default, there are only few significant differences. For instance,
MonetDB has fewer missing bins on average for independent browser and N:1
workflows, which may be attributed to the fact that any interaction of
these workflows only trigger a single query."
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.bench.experiments import MAIN_ENGINES, exp_workflow_types

TYPES = ("independent", "sequential", "one_to_n", "n_to_1")


def _render(outcome) -> str:
    lines = ["Fig. 6d — mean missing bins by system × workflow type (TR=3s)", ""]
    header = f"{'engine':<14} " + " ".join(f"{t:>12}" for t in TYPES)
    lines.append(header)
    lines.append("-" * len(header))
    for engine in MAIN_ENGINES:
        cells = " ".join(f"{outcome[engine][t]:>12.3f}" for t in TYPES)
        lines.append(f"{engine:<14} {cells}")
    return "\n".join(lines)


def test_fig6d_workflow_types(benchmark, ctx, results_dir):
    outcome = benchmark.pedantic(
        lambda: exp_workflow_types(ctx), rounds=1, iterations=1
    )
    write_artifact(results_dir, "fig6d_workflow_types.txt", _render(outcome))

    # MonetDB benefits from single-query interactions: independent and N:1
    # must not be worse than the fan-out types.
    monet = outcome["monetdb-sim"]
    single_query_types = (monet["independent"] + monet["n_to_1"]) / 2
    fanout_types = (monet["sequential"] + monet["one_to_n"]) / 2
    assert single_query_types <= fanout_types + 0.02

    # Differences remain bounded for the sampling engines. (Our simulators
    # show a somewhat stronger concurrency effect for progressive engines
    # than the paper's "only few significant differences" — linked fan-outs
    # split the sampling budget across N simultaneous queries; see
    # EXPERIMENTS.md.)
    for engine in ("idea-sim", "system-x-sim"):
        values = np.array([outcome[engine][t] for t in TYPES])
        assert values.max() - values.min() < 0.7

    # Everything is a valid proportion.
    for engine in MAIN_ENGINES:
        for workflow_type in TYPES:
            assert 0.0 <= outcome[engine][workflow_type] <= 1.0
