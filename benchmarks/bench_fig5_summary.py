"""Fig. 5 — the aggregated summary report (Exp. 1, §5.2).

Paper artifact: for MonetDB, approXimateDB/XDB, IDEA and System X, at five
time requirements (0.5/1/3/5/10 s) over 10 mixed workflows on the 500M
de-normalized flights data: the percentage of TR violations, the mean
percentage of missing bins, and the CDF of mean relative errors truncated
at 100 % together with the area above the curve.

Expected shape (paper §5.2): MonetDB's violations fall roughly linearly
with the TR; XDB stays pinned near the non-online fraction (~66 %) at every
TR; System X violates >50 % at 0.5 s, ≈5 % at 1 s, none from 3 s; IDEA
violates ≈1 % at 0.5 s only. IDEA has the smallest MRE area; XDB's CDF
ends lowest (most MREs above 100 %).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_overall, write_artifact
from repro.bench.experiments import MAIN_ENGINES
from repro.bench.report import mre_cdf
from repro.common.config import DEFAULT_TIME_REQUIREMENTS


def _render(results) -> str:
    lines = ["Fig. 5 — summary report (mixed workload, 500M, de-normalized)", ""]
    header = (
        f"{'engine':<14} {'TR':>5} {'%TR viol':>9} {'%missing':>9} "
        f"{'MRE med':>8} {'MRE area':>9} {'CDF@100%':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for engine in MAIN_ENGINES:
        for tr in DEFAULT_TIME_REQUIREMENTS:
            row = results.summaries[(engine, tr)]
            records = results.records[(engine, tr)]
            cdf = mre_cdf(records, points=2)  # endpoint = CDF at 100 % error
            cdf_end = cdf[-1][1]
            lines.append(
                f"{engine:<14} {tr:>4}s {row.pct_tr_violated:>8.1f}% "
                f"{100 * row.mean_missing_bins:>8.1f}% "
                f"{row.mre_median:>8.3f} {row.mre_area_above_cdf:>9.3f} "
                f"{cdf_end:>9.3f}"
            )
        lines.append("")
    return "\n".join(lines)


def test_fig5_summary(benchmark, ctx, overall_cache, results_dir):
    results = benchmark.pedantic(
        lambda: get_overall(ctx, overall_cache), rounds=1, iterations=1
    )
    write_artifact(results_dir, "fig5_summary.txt", _render(results))

    violations = {
        (engine, tr): results.summaries[(engine, tr)].pct_tr_violated
        for engine in MAIN_ENGINES
        for tr in DEFAULT_TIME_REQUIREMENTS
    }
    # MonetDB: violations decrease (roughly linearly) with the TR.
    monet = [violations[("monetdb-sim", tr)] for tr in DEFAULT_TIME_REQUIREMENTS]
    assert monet == sorted(monet, reverse=True)
    assert monet[0] > 70.0 and monet[-1] < monet[0] / 2

    # XDB: pinned near the non-online fraction at *every* TR.
    xdb = [violations[("xdb-sim", tr)] for tr in DEFAULT_TIME_REQUIREMENTS]
    assert max(xdb) - min(xdb) < 10.0
    assert 40.0 < np.mean(xdb) < 80.0

    # System X: >50 % at 0.5 s, small at 1 s, (near) none from 3 s. A small
    # residual tail at 3–5 s comes from concurrent 1:N bursts sharing
    # capacity — see EXPERIMENTS.md for the documented deviation from the
    # paper's exact zero.
    assert violations[("system-x-sim", 0.5)] > 50.0
    assert violations[("system-x-sim", 1.0)] < 25.0
    assert violations[("system-x-sim", 3.0)] < 10.0
    assert violations[("system-x-sim", 5.0)] < 5.0
    assert violations[("system-x-sim", 10.0)] < 1.0

    # IDEA: only the warm-up query at 0.5 s.
    assert violations[("idea-sim", 0.5)] < 5.0
    for tr in (1.0, 3.0, 5.0, 10.0):
        assert violations[("idea-sim", tr)] == 0.0

    # Quality: IDEA's MRE area is the best of the AQP engines; XDB worst.
    area = {
        engine: results.summaries[(engine, 3.0)].mre_area_above_cdf
        for engine in ("xdb-sim", "idea-sim", "system-x-sim")
    }
    assert area["idea-sim"] <= area["system-x-sim"] + 0.05
    assert area["xdb-sim"] > area["idea-sim"]

    # IDEA misses the fewest bins at the tightest TR (its §5.2 headline).
    missing_05 = {
        engine: results.summaries[(engine, 0.5)].mean_missing_bins
        for engine in MAIN_ENGINES
    }
    assert missing_05["idea-sim"] == min(missing_05.values())
