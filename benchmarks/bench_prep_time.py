"""§5.2 — data preparation time per system (Exp. 1, narrative table).

Paper numbers at 500 M rows: MonetDB 19 min (CSV load), approXimateDB
130 min (load + primary key), IDEA 3 min (fixed start-up load), System X
27 min (load + offline stratified sample tables + warm-up queries).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.experiments import MAIN_ENGINES, exp_prep_times

#: Paper-reported minutes at 500M (±10 % tolerance for the model).
PAPER_MINUTES = {
    "monetdb-sim": 19.0,
    "xdb-sim": 130.0,
    "idea-sim": 3.0,
    "system-x-sim": 27.0,
}


def _render(reports) -> str:
    lines = ["§5.2 — data preparation time at 500M rows", ""]
    header = f"{'engine':<14} {'measured':>9} {'paper':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for engine in MAIN_ENGINES:
        lines.append(
            f"{engine:<14} {reports[engine].minutes:>8.1f}m "
            f"{PAPER_MINUTES[engine]:>6.0f}m"
        )
    return "\n".join(lines)


def test_prep_times(benchmark, ctx, results_dir):
    reports = benchmark.pedantic(lambda: exp_prep_times(ctx), rounds=1, iterations=1)
    write_artifact(results_dir, "prep_times.txt", _render(reports))

    for engine, paper_minutes in PAPER_MINUTES.items():
        assert reports[engine].minutes == pytest.approx(paper_minutes, rel=0.12)

    # Component breakdowns are reported and non-negative.
    for report in reports.values():
        assert report.components
        assert all(seconds >= 0 for _name, seconds in report.components)
