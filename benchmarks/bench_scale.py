"""Acceptance benchmark for population-scale serving (ISSUE 8).

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_scale.py [--curve 2000,20000]

Demonstrates the event-calendar scheduler's scale criteria:

1. **scale curve** — open-system spooled runs complete N total sessions
   in one process (N sweeping the ``--curve`` counts) under a wall cap,
   with every session served and all per-session state freed at retire;
2. **constant memory** — tracemalloc peak at N total sessions vs 2N
   total sessions (same arrival rate and residence, so the same steady
   active population) stays within ``MEMORY_RATIO_CAP``: memory is
   O(active sessions), not O(total sessions served);
3. **saturation curve** — ramping the arrival rate on a shared engine
   grows the active population and the %TR-violated climbs with it
   (sessions vs TR violations vs wall time — the load-shedding signal a
   deployment would alarm on);
4. **determinism** — a repeated spooled run reproduces the spill file
   byte-for-byte and every aggregate counter exactly.

Results land in ``benchmarks/results/scale.txt`` (and
``BENCH_scale.json``). The 10⁵-session acceptance configuration is
``--curve 100000 --wall-cap 900``.
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.bench.experiments import ExperimentContext
from repro.common.config import BenchmarkSettings, DataSize
from repro.server import ArrivalProcess, OpenSystemManager, RecordSpool

try:  # package import (repo root on sys.path)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation: benchmarks/ is sys.path[0]
    from benchjson import artifact_identity, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"

#: Peak-memory growth allowed when the *total* session count doubles at
#: a constant active population. 1.0 would be perfectly constant; the
#: slack absorbs allocator noise and the spool's OS write buffering.
MEMORY_RATIO_CAP = 1.35

#: %TR-violated floor the saturated (highest-rate) shared-engine point
#: must exceed — the curve has to actually bend.
SATURATION_TR_FLOOR = 5.0


def _arrivals(total, rate, residence, seed):
    # Horizon padded 50% past the expected fill time so the Poisson
    # draw always reaches the session cap: every run serves exactly
    # ``total`` sessions, which the curve checks count on.
    return ArrivalProcess(
        rate, 1.5 * total / rate, seed=seed,
        mean_residence=residence, max_sessions=total,
    )


def _serve(ctx, args, arrivals, *, share_engine=False, spill=None):
    manager = OpenSystemManager.for_engine(
        ctx, args.engine, arrivals,
        per_session=args.per_session,
        share_engine=share_engine,
        spool=RecordSpool(spill),
    )
    start = time.perf_counter()
    manager.run()
    wall = time.perf_counter() - start
    manager.spool.close()
    return manager, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--curve", default="2000,20000",
                        help="comma-separated total session counts for "
                             "the scale curve")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="arrival rate (sessions per virtual second)")
    parser.add_argument("--residence", type=float, default=2.0,
                        help="mean session residence (virtual seconds); "
                             "rate × residence ≈ steady active population")
    parser.add_argument("--memory-sessions", type=int, default=800,
                        dest="memory_sessions",
                        help="N for the constant-memory check (peak at "
                             "N vs 2N total sessions)")
    parser.add_argument("--saturation-rates", default="5,15,40",
                        dest="saturation_rates",
                        help="comma-separated arrival rates for the "
                             "shared-engine saturation sweep")
    parser.add_argument("--wall-cap", type=float, default=300.0,
                        dest="wall_cap",
                        help="wall-second cap per scale-curve point")
    parser.add_argument("--per-session", type=int, default=1,
                        dest="per_session")
    parser.add_argument("--engine", default="idea-sim")
    parser.add_argument("--scale", type=int, default=1_000_000,
                        help="virtual-to-actual scale (1M → 100 rows at "
                             "S: tiny queries, the scheduler is the "
                             "system under test)")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)

    curve = [int(n) for n in args.curve.split(",") if n]
    rates = [float(r) for r in args.saturation_rates.split(",") if r]
    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=args.scale,
        seed=args.seed,
        time_requirement=1.0,
    )
    ctx = ExperimentContext(settings)
    # Warm the shared immutable state (dataset, oracle) so neither the
    # wall caps nor the tracemalloc peaks measure one-time setup.
    ctx.dataset(settings.data_size)
    ctx.oracle(settings.data_size)

    lines = [
        f"population-scale serving benchmark — {args.engine}, "
        f"{settings.actual_rows:,} actual rows, "
        f"arrivals {args.rate:g}/s × residence {args.residence:g}s "
        f"(steady active ≈ {args.rate * args.residence:.0f})",
        "",
    ]
    ok = True

    def check(condition, message):
        nonlocal ok
        lines.append(("PASS: " if condition else "FAIL: ") + message)
        ok = ok and bool(condition)

    # 1. Scale curve: N total sessions, one process, spooled.
    lines.append("scale curve (isolated engines, spooled):")
    lines.append(
        f"  {'total':>8} {'served':>8} {'peak act':>8} {'queries':>8} "
        f"{'%TR viol':>8} {'wall':>8} {'sess/s':>8}"
    )
    curve_rows = []
    for total in curve:
        manager, wall = _serve(
            ctx, args, _arrivals(total, args.rate, args.residence, args.seed)
        )
        agg = manager.aggregate
        pct = (
            100.0 * agg.tr_violations / agg.num_queries
            if agg.num_queries else 0.0
        )
        lines.append(
            f"  {total:>8} {agg.sessions_served:>8} {agg.peak_active:>8} "
            f"{agg.num_queries:>8} {pct:>7.1f}% {wall:>7.1f}s "
            f"{agg.sessions_served / wall:>8.0f}"
        )
        curve_rows.append({
            "total_sessions": total,
            "sessions_served": agg.sessions_served,
            "peak_active": agg.peak_active,
            "num_queries": agg.num_queries,
            "pct_tr_violated": pct,
            "wall_seconds": wall,
        })
        check(
            agg.sessions_served == total,
            f"{total} sessions: every arrival served",
        )
        check(
            wall < args.wall_cap,
            f"{total} sessions: wall {wall:.1f}s under cap "
            f"{args.wall_cap:g}s",
        )
        check(
            manager.streams == {},
            f"{total} sessions: per-session streams freed at retire",
        )
    lines.append("")

    # 2. Constant memory: peak at N vs 2N total sessions.
    def traced_peak(total):
        gc.collect()
        tracemalloc.start()
        manager, _ = _serve(
            ctx, args, _arrivals(total, args.rate, args.residence, args.seed)
        )
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        return peak, manager.aggregate

    base_n = args.memory_sessions
    peak_small, agg_small = traced_peak(base_n)
    peak_large, agg_large = traced_peak(2 * base_n)
    ratio = peak_large / peak_small
    lines.append(
        f"constant memory: peak {peak_small / 1e6:.2f} MB @ {base_n} "
        f"total → {peak_large / 1e6:.2f} MB @ {2 * base_n} total "
        f"(ratio {ratio:.2f}, active {agg_small.peak_active} → "
        f"{agg_large.peak_active})"
    )
    check(
        agg_large.sessions_served == 2 * agg_small.sessions_served,
        "memory check doubled the total population",
    )
    check(
        ratio <= MEMORY_RATIO_CAP,
        f"peak memory O(active): 2× total sessions grew peak "
        f"{ratio:.2f}× (cap {MEMORY_RATIO_CAP})",
    )
    lines.append("")

    # 3. Saturation curve: shared engine, ramping arrival rate.
    lines.append("saturation curve (ONE shared engine, horizon 40s):")
    saturation_rows = []
    for rate in rates:
        arrivals = ArrivalProcess(
            rate, 40.0, seed=args.seed,
            mean_residence=args.residence, max_sessions=10 ** 6,
        )
        manager, wall = _serve(ctx, args, arrivals, share_engine=True)
        agg = manager.aggregate
        pct = (
            100.0 * agg.tr_violations / agg.num_queries
            if agg.num_queries else 0.0
        )
        lines.append(
            f"  rate {rate:>5.1f}/s: active ≤{agg.peak_active:>4}, "
            f"{agg.num_queries:>6} queries, {pct:>5.1f}% TR violated, "
            f"{wall:.1f}s wall"
        )
        saturation_rows.append({
            "arrival_rate": rate,
            "peak_active": agg.peak_active,
            "num_queries": agg.num_queries,
            "pct_tr_violated": pct,
            "wall_seconds": wall,
        })
    pcts = [row["pct_tr_violated"] for row in saturation_rows]
    check(
        all(a <= b for a, b in zip(pcts, pcts[1:])),
        "TR violations nondecreasing as arrival rate ramps",
    )
    check(
        pcts[-1] > SATURATION_TR_FLOOR > pcts[0],
        f"curve bends: {pcts[0]:.1f}% at {rates[0]:g}/s → "
        f"{pcts[-1]:.1f}% at {rates[-1]:g}/s "
        f"(floor {SATURATION_TR_FLOOR:g}%)",
    )
    lines.append("")

    # 4. Determinism: spill bytes and aggregates reproduce exactly.
    with tempfile.TemporaryDirectory() as tmp:
        def spooled(path):
            manager, _ = _serve(
                ctx, args,
                _arrivals(curve[0], args.rate, args.residence, args.seed),
                spill=path,
            )
            agg = manager.aggregate
            return Path(path).read_bytes(), (
                agg.num_queries, agg.tr_violations, agg.sessions_served,
                agg.sessions_departed, agg.total_steps, agg.peak_active,
                agg.virtual_makespan,
            )

        bytes_a, agg_a = spooled(str(Path(tmp) / "a.jsonl"))
        bytes_b, agg_b = spooled(str(Path(tmp) / "b.jsonl"))
    check(bytes_a == bytes_b, "spill file byte-identical across runs")
    check(agg_a == agg_b, "aggregate counters identical across runs")

    lines.append("")
    lines.append("PASS" if ok else "FAIL")

    text = "\n".join(lines)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scale.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "artifact": "scale.txt",
        "ok": ok,
        "curve": curve_rows,
        "memory": {
            "total_sessions": base_n,
            "peak_bytes_small": peak_small,
            "peak_bytes_large": peak_large,
            "ratio": ratio,
            "ratio_cap": MEMORY_RATIO_CAP,
        },
        "saturation": saturation_rows,
    }
    payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "scale", payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
