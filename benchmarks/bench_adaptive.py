"""Acceptance benchmark for adaptive sessions and open-system churn.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py [--sessions 4]

Demonstrates the adaptive layer's acceptance criteria:

1. **replay anchor** — serving with the ``replay`` policy (every
   interaction routed through the policy machinery) is byte-identical to
   scripted serving *and* to serial per-session runs;
2. **adaptive determinism** — ``markov`` and ``uncertainty`` runs are
   byte-identical across repeated invocations and across wall-clock
   acceleration factors;
3. **open-system churn determinism** — a Poisson arrival schedule with
   exponential residences spawns and retires sessions mid-run, and two
   executions (one heavily accelerated) produce identical bytes;
4. **behavioral difference** — the adaptive policies fire measurably
   different interaction mixes than replay (total-variation distance).

Results land in ``benchmarks/results/adaptive.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import ExperimentContext
from repro.common.config import BenchmarkSettings, DataSize
from repro.server import (
    ArrivalProcess,
    OpenSystemManager,
    SessionManager,
    serial_baseline,
)
from repro.workflow.policy import interaction_mix, mix_distance

try:  # package import (repo root on sys.path)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation: benchmarks/ is sys.path[0]
    from benchjson import artifact_identity, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"

#: Minimum total-variation distance between an adaptive policy's
#: interaction mix and replay's for the policies to count as
#: "measurably different users".
MIX_DISTANCE_FLOOR = 0.05


def _csvs(results):
    return [result.csv_text() for result in results]


def _mix(results):
    counts = {}
    for result in results:
        for kind, count in result.interaction_counts.items():
            counts[kind] = counts.get(kind, 0) + count
    return interaction_mix(counts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=4,
                        help="concurrent sessions / arrival cap")
    parser.add_argument("--per-session", type=int, default=1,
                        dest="per_session")
    parser.add_argument("--engine", default="idea-sim")
    parser.add_argument("--scale", type=int, default=50_000,
                        help="virtual-to-actual scale (50k → 2k rows at S)")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)

    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=args.scale,
        seed=args.seed,
        time_requirement=1.0,
    )
    ctx = ExperimentContext(settings)
    lines = [
        f"adaptive sessions benchmark — {args.sessions} sessions on "
        f"{args.engine}, {settings.actual_rows:,} actual rows",
        "",
    ]
    ok = True

    def check(condition, message):
        nonlocal ok
        lines.append(("PASS: " if condition else "FAIL: ") + message)
        ok = ok and bool(condition)

    def serve(policy, accel=None):
        return SessionManager.for_engine(
            ctx, args.engine, args.sessions,
            per_session=args.per_session, policy=policy, accel=accel,
        ).run()

    # 1. Replay anchor.
    scripted = serve(None)
    replayed = serve("replay")
    check(
        _csvs(scripted) == _csvs(replayed),
        "replay-policy serving byte-identical to scripted serving",
    )
    baseline = serial_baseline(
        ctx, args.engine,
        SessionManager.for_engine(
            ctx, args.engine, args.sessions, per_session=args.per_session
        ).specs,
    )
    check(
        _csvs(replayed) == _csvs(baseline),
        "replay-policy serving byte-identical to serial per-session runs",
    )

    # 2. Adaptive determinism (repeat + acceleration).
    mixes = {"replay": _mix(replayed)}
    for policy in ("markov", "uncertainty"):
        first = serve(policy)
        second = serve(policy)
        paced = serve(policy, accel=1_000_000.0)
        check(
            _csvs(first) == _csvs(second),
            f"{policy}: two runs byte-identical",
        )
        check(
            _csvs(first) == _csvs(paced),
            f"{policy}: accelerated pacing byte-identical",
        )
        queries = sum(result.num_queries for result in first)
        lines.append(f"  {policy}: {queries} queries")
        mixes[policy] = _mix(first)

    # 3. Open-system churn.
    def churn(accel=None):
        arrivals = ArrivalProcess(
            0.2, 40.0, seed=settings.seed,
            mean_residence=25.0, max_sessions=args.sessions,
        )
        manager = OpenSystemManager.for_engine(
            ctx, args.engine, arrivals, policy="markov",
            per_session=args.per_session, share_engine=True, accel=accel,
        )
        return manager.run()

    first = churn()
    second = churn()
    paced = churn(accel=1_000_000.0)
    departed = sum(result.departed_at is not None for result in first)
    lines.append("")
    lines.append(
        f"open system: {len(first)} sessions arrived, {departed} departed "
        f"mid-run (shared engine)"
    )
    check(len(first) >= 2, "arrival schedule spawned at least two sessions")
    check(departed >= 1, "at least one session churned out mid-run")
    check(
        _csvs(first) == _csvs(second),
        "churned run byte-identical across invocations",
    )
    check(
        _csvs(first) == _csvs(paced),
        "churned run byte-identical under acceleration",
    )

    # 4. Interaction mixes differ measurably.
    lines.append("")
    for policy in ("markov", "uncertainty"):
        distance = mix_distance(mixes["replay"], mixes[policy])
        lines.append(
            f"mix distance replay ↔ {policy}: {distance:.3f} "
            f"(floor {MIX_DISTANCE_FLOOR})"
        )
        check(
            distance > MIX_DISTANCE_FLOOR,
            f"{policy} users behave measurably differently from replay",
        )

    lines.append("")
    lines.append("PASS" if ok else "FAIL")

    text = "\n".join(lines)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "adaptive.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "artifact": "adaptive.txt",
        "ok": ok,
        "sessions": args.sessions,
        "churn_sessions": len(first),
        "churn_departed": departed,
        "mix_distance": {
            policy: mix_distance(mixes["replay"], mixes[policy])
            for policy in ("markov", "uncertainty")
        },
    }
    payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "adaptive", payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
