"""Fig. 6b — median of the mean relative margins of error vs. TR.

Paper artifact: for the AQP/progressive engines (MonetDB returns exact
answers and reports no margins), the median across queries of the per-query
mean relative margin of error, at each TR.

Expected shape (§5.2): approXimateDB has *significantly* higher relative
margins than both IDEA and System X; System X's median is large at
TR=0.5 s and drops once slower/larger queries make the cut at 1 s, then
stays constant (fixed offline sample); IDEA's stays low and shrinks as
more tuples stream in.
"""

from __future__ import annotations

import math

from benchmarks.conftest import get_overall, write_artifact
from repro.common.config import DEFAULT_TIME_REQUIREMENTS

AQP_ENGINES = ("xdb-sim", "idea-sim", "system-x-sim")


def _render(series) -> str:
    lines = ["Fig. 6b — median of mean relative margins vs TR", ""]
    header = f"{'engine':<14} " + " ".join(f"{tr:>8}s" for tr in DEFAULT_TIME_REQUIREMENTS)
    lines.append(header)
    lines.append("-" * len(header))
    for engine in AQP_ENGINES:
        cells = " ".join(
            ("     nan" if math.isnan(value) else f"{value:>8.3f}")
            for _tr, value in series[engine]
        )
        lines.append(f"{engine:<14} {cells}")
    return "\n".join(lines)


def test_fig6b_margins(benchmark, ctx, overall_cache, results_dir):
    results = get_overall(ctx, overall_cache)
    series = benchmark.pedantic(
        lambda: results.series("margin_median"), rounds=1, iterations=1
    )
    write_artifact(results_dir, "fig6b_margins.txt", _render(series))

    xdb = dict(series["xdb-sim"])
    idea = dict(series["idea-sim"])
    system_x = dict(series["system-x-sim"])

    # XDB margins dominate at every TR (wander-join sampling is slow).
    for tr in DEFAULT_TIME_REQUIREMENTS:
        assert xdb[tr] > idea[tr]
        assert xdb[tr] > system_x[tr]

    # IDEA margins shrink with more time and stay small.
    assert idea[10.0] <= idea[0.5]
    assert idea[10.0] < 0.5

    # System X: constant from TR=1s on (offline sample, §6 discussion).
    assert abs(system_x[3.0] - system_x[10.0]) < 0.05
