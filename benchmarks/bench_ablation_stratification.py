"""Ablation — System X's stratified vs. uniform offline sampling.

Not a paper figure: an ablation of the design choice behind System X's
§6 discussion ("stratified sampling is able to provide results similar to
online systems"). Stratification's payoff is *rare-group coverage*: a 1 %
uniform sample misses categories whose frequency is ≪ 1/sample size,
while proportional-with-minimum stratified allocation guarantees every
stratum is represented.

Setup: COUNT by carrier (the stratification column) and COUNT by origin
airport (a *different* skewed column), answered from a 1 % offline sample
built either stratified or uniformly. Measured: missing bins and MRE.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.bench.metrics import compute_metrics
from repro.common.clock import VirtualClock
from repro.engines.sampling import StratifiedSamplingEngine
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind


def _carrier_query():
    return AggQuery(
        "flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )


def _origin_query():
    return AggQuery(
        "flights",
        bins=(BinDimension("ORIGIN", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )


def _evaluate(ctx, stratify: bool):
    settings = ctx.settings.with_(time_requirement=10.0)
    dataset = ctx.dataset(settings.data_size)
    oracle = ctx.oracle(settings.data_size)
    engine = StratifiedSamplingEngine(
        dataset, settings, VirtualClock(), sampling_rate=0.01, stratify=stratify
    )
    engine.prepare()
    outcome = {}
    for label, query in (("carrier", _carrier_query()), ("origin", _origin_query())):
        handle = engine.submit(query)
        engine.clock.advance_to(engine.clock.now() + 10.0)
        engine.advance_to(engine.clock.now())
        result = engine.result_at(handle, engine.clock.now())
        metrics = compute_metrics(result, oracle.answer(query))
        outcome[label] = metrics
    return outcome


def _render(stratified, uniform) -> str:
    lines = ["Ablation — stratified vs uniform 1% offline sample (System X)", ""]
    header = f"{'query':<10} {'variant':<12} {'missing':>8} {'MRE':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for label in ("carrier", "origin"):
        for name, metrics in (("stratified", stratified[label]),
                              ("uniform", uniform[label])):
            lines.append(
                f"{label:<10} {name:<12} {metrics.missing_bins:>7.1%} "
                f"{metrics.rel_error_avg:>8.3f}"
            )
    return "\n".join(lines)


def test_ablation_stratification(benchmark, ctx, results_dir):
    def run_both():
        return _evaluate(ctx, stratify=True), _evaluate(ctx, stratify=False)

    stratified, uniform = benchmark.pedantic(run_both, rounds=1, iterations=1)
    write_artifact(
        results_dir, "ablation_stratification.txt", _render(stratified, uniform)
    )

    # On the stratification column rare carriers are guaranteed: nothing
    # missing, and the counts are (near-)exact per stratum.
    assert stratified["carrier"].missing_bins == 0.0
    assert stratified["carrier"].missing_bins <= uniform["carrier"].missing_bins
    assert stratified["carrier"].rel_error_avg <= (
        uniform["carrier"].rel_error_avg + 1e-9
    )
    # Off-column queries keep sane behaviour under both designs.
    for outcome in (stratified, uniform):
        assert 0.0 <= outcome["origin"].missing_bins <= 1.0
