"""Acceptance benchmark for the network front-end (TCP protocol server).

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_net.py [--sessions 4]

A thin wrapper around the shared harness in :mod:`repro.net.bench`
(the same one ``repro bench-net`` runs), asserting the subsystem's
acceptance criteria:

1. **scripted byte-equivalence** — a scripted client over loopback TCP
   reassembles, for every session, a detailed report byte-identical to
   the equivalent in-process ``repro serve`` run (the determinism
   guarantee extended across the wire, docs/protocol.md);
2. **client-driven replay equivalence** — driving a session interaction
   by interaction over the wire reproduces the serial records for the
   same workflow exactly (wall arrival time never leaks into results);
3. **policy sessions over TCP** — a markov session served over the
   socket is byte-identical across fetches and to the in-process run;
4. **shared-engine byte-equivalence (v2 turn protocol)** — every
   session of a shared-engine loopback run (scripted clients and a
   client-driven wire replay) reassembles a report byte-identical to
   the in-process ``repro serve --share-engine`` run;
5. **remote load generation smoke** — ``bench-net --remote`` semantics:
   N ≥ 3 real ``repro connect`` client processes against one
   shared-engine server yield an aggregated contention report that is
   byte-identical across repeated runs and to the in-process shared
   report;
6. **overhead report** — wall time over TCP vs in-process and the
   per-query round-trip cost, as diagnostics (never gated).

Results land in ``benchmarks/results/net.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import ExperimentContext
from repro.common.config import BenchmarkSettings, DataSize
from repro.net.bench import (
    render_net_bench,
    render_remote_bench,
    render_shared_net_bench,
    run_net_bench,
    run_remote_bench,
    run_shared_net_bench,
)

try:  # package import (repo root on sys.path)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation: benchmarks/ is sys.path[0]
    from benchjson import artifact_identity, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=4,
                        help="scripted sessions to compare")
    parser.add_argument("--per-session", type=int, default=1,
                        dest="per_session")
    parser.add_argument("--engine", default="idea-sim")
    parser.add_argument("--scale", type=int, default=50_000,
                        help="virtual-to-actual scale (50k → 2k rows at S)")
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--remote-clients", type=int, default=3,
                        dest="remote_clients",
                        help="client processes for the --remote smoke run")
    args = parser.parse_args(argv)

    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=args.scale,
        seed=args.seed,
        time_requirement=1.0,
    )
    ctx = ExperimentContext(settings)
    result = run_net_bench(
        ctx, args.engine, args.sessions, per_session=args.per_session
    )
    shared = run_shared_net_bench(
        ctx, args.engine, args.sessions, per_session=args.per_session
    )
    remote = run_remote_bench(
        ctx, args.engine, max(3, args.remote_clients),
        per_session=args.per_session,
    )
    ok = result.ok and shared.ok and remote.ok
    lines = [
        f"network front-end benchmark — {args.sessions} sessions on "
        f"{args.engine} over loopback TCP, {settings.actual_rows:,} "
        f"actual rows",
        "",
    ]
    lines.extend(render_net_bench(result))
    lines.append("")
    lines.extend(render_shared_net_bench(shared))
    lines.append("")
    lines.extend(render_remote_bench(remote))
    lines.append("")
    lines.append("PASS" if ok else "FAIL")

    text = "\n".join(lines)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "net.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "artifact": "net.txt",
        "ok": ok,
        "sessions": args.sessions,
        "isolated_ok": result.ok,
        "shared_ok": shared.ok,
        "remote_ok": remote.ok,
    }
    payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "net", payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
