"""Acceptance benchmark for the observability layer.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_obs.py [--sessions 4]

Demonstrates the two promises `docs/observability.md` makes:

1. **byte neutrality** — enabling tracing + metrics + stage profiling
   changes no pinned output: the session-server workload produces
   byte-identical per-session CSVs traced vs. untraced, and every
   golden report/transcript in ``tests/golden/`` rebuilds identically
   under ``observed(enabled=True)``;
2. **bounded overhead** — the fully-instrumented session-server run
   costs at most ``OVERHEAD_BOUND`` (5%) more wall time than the
   uninstrumented run (best-of-``--reps`` on both sides, so scheduler
   noise does not dominate a few-second workload);
3. **cheap streaming** — a shared-engine TCP run with a subscribed
   STATS_PUSH probe attached produces byte-identical workload frames
   and stays within the same overhead bound versus the identical run
   with streaming off.

Results land in ``benchmarks/results/obs.txt`` and the measured ratios
in ``benchmarks/results/BENCH_obs.json`` /
``benchmarks/results/BENCH_obs_stream.json``.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

from repro.bench.experiments import ExperimentContext
from repro.common.clock import perf_seconds
from repro.common.config import BenchmarkSettings, DataSize
from repro.obs import observed
from repro.server import SessionManager

try:  # package import (repo root on sys.path)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation: benchmarks/ is sys.path[0]
    from benchjson import artifact_identity, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Maximum tolerated traced/untraced wall-time ratio.
OVERHEAD_BOUND = 1.05


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_golden_bench_obs", REPO_ROOT / "tools" / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regen_golden_bench_obs", module)
    spec.loader.exec_module(module)
    return module


def _workload(ctx, engine, sessions, per_session):
    results = SessionManager.for_engine(
        ctx, engine, sessions, per_session=per_session, share_engine=True
    ).run()
    return [result.csv_text() for result in results]


def _tcp_run(ctx, engine, sessions, per_session, *, stats_window=None):
    """One shared-engine TCP run; returns (slot-0 frames, windows, wall s).

    With ``stats_window`` set, a subscriber probe rides along on its own
    connection and drains the full pushed window stream — the
    streaming-on configuration whose cost and byte-neutrality the
    benchmark measures against the identical run with streaming off.
    """
    import threading

    from repro.net.client import (
        NetClient, fetch_scripted_session, stream_server_stats,
    )
    from repro.net.server import ServerThread, TcpSessionServer

    server = TcpSessionServer(
        ctx, engine, share_engine=True, max_sessions=sessions,
        per_session=per_session, stats_window=stats_window,
    )
    pushes = []
    started = perf_seconds()
    with ServerThread(server) as (host, port):
        probe = None
        if stats_window is not None:
            probe = threading.Thread(
                target=lambda: pushes.extend(stream_server_stats(host, port)),
                daemon=True,
            )
            probe.start()
        peers = [
            threading.Thread(
                target=fetch_scripted_session,
                args=(host, port, slot),
                kwargs={"per_session": per_session},
                daemon=True,
            )
            for slot in range(1, sessions)
        ]
        for peer in peers:
            peer.start()
        with NetClient(host, port, log_frames=True) as client:
            client.hello()
            client.attach_scripted(
                0, per_session=per_session, workflow_type="mixed"
            )
            client.collect()
            frames = list(client.frame_log)
        for peer in peers:
            peer.join(120)
        if probe is not None:
            probe.join(120)
    return frames, pushes, perf_seconds() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--per-session", type=int, default=2,
                        dest="per_session")
    parser.add_argument("--engine", default="idea-sim")
    parser.add_argument("--scale", type=int, default=2000,
                        help="virtual-to-actual scale (2000 → 50k rows at S)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--reps", type=int, default=5,
                        help="timed repetitions per mode (best-of wins)")
    args = parser.parse_args(argv)

    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=args.scale,
        seed=args.seed,
        time_requirement=1.0,
    )
    ctx = ExperimentContext(settings)
    lines = [
        f"observability benchmark — {args.sessions} shared-engine sessions × "
        f"{args.per_session} mixed workflows on {args.engine}, "
        f"{settings.actual_rows:,} actual rows",
        "",
    ]
    ok = True

    # Warm the dataset/workflow caches so neither timed mode pays them.
    baseline_csvs = _workload(ctx, args.engine, args.sessions, args.per_session)

    # 1a. Byte neutrality on the workload itself.
    trace_entries = 0
    with observed(enabled=True) as tracer:
        traced_csvs = _workload(
            ctx, args.engine, args.sessions, args.per_session
        )
        trace_entries = len(list(tracer.entries()))
    neutral = traced_csvs == baseline_csvs
    lines.append(
        f"traced run byte-identical to untraced run: {neutral} "
        f"({trace_entries} trace entries recorded)"
    )
    if not neutral:
        lines.append("FAIL: tracing perturbed the session reports")
        ok = False

    # 1b. Byte neutrality of the full golden corpus under tracing.
    regen = _load_regen()
    golden_ctx = regen.build_context()
    changed = []
    for name, builder in regen.GOLDEN_CASES.items():
        if name.startswith("trace_"):
            continue  # the trace pins themselves; covered by tier-1
        with observed(enabled=True):
            rebuilt = builder(golden_ctx).encode("utf-8")
        if rebuilt != (GOLDEN_DIR / name).read_bytes():
            changed.append(name)
    lines.append(
        f"golden corpus unchanged under tracing: {not changed} "
        f"({len(regen.GOLDEN_CASES) - 2} files checked)"
    )
    if changed:
        lines.append(f"FAIL: golden bytes changed: {', '.join(changed)}")
        ok = False

    # 2. Overhead: best-of-N traced vs. untraced wall time.
    def timed(instrumented: bool) -> float:
        best = float("inf")
        for _ in range(max(1, args.reps)):
            if instrumented:
                started = perf_seconds()
                with observed(enabled=True):
                    _workload(ctx, args.engine, args.sessions, args.per_session)
                best = min(best, perf_seconds() - started)
            else:
                started = perf_seconds()
                _workload(ctx, args.engine, args.sessions, args.per_session)
                best = min(best, perf_seconds() - started)
        return best

    untraced_seconds = timed(False)
    traced_seconds = timed(True)
    ratio = traced_seconds / untraced_seconds
    lines.append("")
    lines.append(
        f"wall time (best of {args.reps}): untraced {untraced_seconds:.3f}s, "
        f"traced {traced_seconds:.3f}s (ratio {ratio:.3f}, "
        f"bound {OVERHEAD_BOUND:.2f})"
    )
    if ratio > OVERHEAD_BOUND:
        lines.append(
            f"FAIL: tracing overhead {100 * (ratio - 1):.1f}% exceeds "
            f"{100 * (OVERHEAD_BOUND - 1):.0f}%"
        )
        ok = False

    # 3. Streaming telemetry: a subscribed probe must neither perturb the
    #    workload's wire bytes nor cost more than the overhead bound.
    stream_window = 5.0

    def timed_tcp(stats_window):
        best_seconds = float("inf")
        best_frames, best_pushes = None, []
        for _ in range(max(1, args.reps)):
            frames, pushes, seconds = _tcp_run(
                ctx, args.engine, args.sessions, args.per_session,
                stats_window=stats_window,
            )
            if seconds < best_seconds:
                best_seconds = seconds
                best_frames, best_pushes = frames, pushes
        return best_frames, best_pushes, best_seconds

    plain_frames, _, plain_seconds = timed_tcp(None)
    stream_frames, pushes, stream_seconds = timed_tcp(stream_window)
    stream_neutral = stream_frames == plain_frames
    stream_ratio = stream_seconds / plain_seconds
    lines.append("")
    lines.append(
        f"streaming: {len(pushes)} windows pushed to the probe "
        f"(window {stream_window:g} virtual s)"
    )
    lines.append(
        f"workload wire bytes identical with streaming on: {stream_neutral}"
    )
    if not stream_neutral:
        lines.append("FAIL: streaming perturbed the session frames")
        ok = False
    lines.append(
        f"TCP wall time (best of {args.reps}): streaming off "
        f"{plain_seconds:.3f}s, on {stream_seconds:.3f}s "
        f"(ratio {stream_ratio:.3f}, bound {OVERHEAD_BOUND:.2f})"
    )
    if stream_ratio > OVERHEAD_BOUND:
        lines.append(
            f"FAIL: streaming overhead {100 * (stream_ratio - 1):.1f}% "
            f"exceeds {100 * (OVERHEAD_BOUND - 1):.0f}%"
        )
        ok = False

    lines.append("")
    lines.append("PASS" if ok else "FAIL")

    text = "\n".join(lines)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "artifact": "obs.txt",
        "ok": ok,
        "sessions": args.sessions,
        "reps": args.reps,
        "untraced_seconds": untraced_seconds,
        "traced_seconds": traced_seconds,
        "overhead_ratio": ratio,
        "overhead_bound": OVERHEAD_BOUND,
        "byte_neutral_workload": neutral,
        "golden_unchanged": not changed,
        "trace_entries": trace_entries,
    }
    payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "obs", payload)
    stream_payload = {
        "artifact": "obs.txt",
        "ok": stream_neutral and stream_ratio <= OVERHEAD_BOUND,
        "sessions": args.sessions,
        "reps": args.reps,
        "stats_window": stream_window,
        "windows_pushed": len(pushes),
        "plain_seconds": plain_seconds,
        "streaming_seconds": stream_seconds,
        "overhead_ratio": stream_ratio,
        "overhead_bound": OVERHEAD_BOUND,
        "workload_bytes_unchanged": stream_neutral,
    }
    stream_payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "obs_stream", stream_payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
