"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md §2 for the index). The shared
:class:`ExperimentContext` uses the paper's default configuration mapped
onto laptop scale (DESIGN.md §1.3):

* sizes S/M/L = 100M/500M/1B virtual rows over ``scale`` = 1000, i.e.
  100k/500k/1M actual rows;
* 10 workflows per type (paper default) unless ``IDEBENCH_BENCH_WORKFLOWS``
  overrides it;
* the virtual clock, so results are deterministic.

Each benchmark writes its rendered artifact to ``benchmarks/results/`` so
the regenerated tables can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.experiments import ExperimentContext
from repro.common.config import BenchmarkSettings, DataSize

try:  # package import (pytest from the repo root)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation with benchmarks/ on sys.path
    from benchjson import artifact_identity, write_bench_json

#: Environment overrides for slower/faster machines.
BENCH_SCALE = int(os.environ.get("IDEBENCH_BENCH_SCALE", "1000"))
BENCH_WORKFLOWS = int(os.environ.get("IDEBENCH_BENCH_WORKFLOWS", "10"))
BENCH_SEED = int(os.environ.get("IDEBENCH_BENCH_SEED", "42"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_settings() -> BenchmarkSettings:
    return BenchmarkSettings(
        data_size=DataSize.M,
        scale=BENCH_SCALE,
        workflows_per_type=BENCH_WORKFLOWS,
        seed=BENCH_SEED,
    )


@pytest.fixture(scope="session")
def ctx(bench_settings) -> ExperimentContext:
    return ExperimentContext(bench_settings)


@pytest.fixture(scope="session")
def overall_cache():
    """Holds the Exp.-1 sweep so Fig. 5/6a/6b/6c share one computation."""
    return {}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: Path, name: str, text: str, data=None) -> None:
    """Persist a rendered table, echo it to stdout, and drop the
    machine-readable ``BENCH_<stem>.json`` sidecar (artifact identity
    plus any benchmark-specific ``data`` measurements)."""
    path = results_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    stem = Path(name).stem
    payload = {"artifact": name}
    payload.update(artifact_identity(text))
    if data:
        payload.update(data)
    write_bench_json(results_dir, stem, payload)
    print(f"\n[{name}]\n{text}")


def get_overall(ctx, overall_cache):
    """Compute (once) the Exp.-1 sweep: 4 engines × 5 TRs, mixed workload."""
    if "overall" not in overall_cache:
        from repro.bench.experiments import exp_overall

        overall_cache["overall"] = exp_overall(ctx)
    return overall_cache["overall"]
