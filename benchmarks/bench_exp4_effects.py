"""Exp. 4 (§5.5) — other effects: what actually moves the metrics.

Paper finding: across bin widths/counts, binning types (1-D vs 2-D,
nominal vs quantitative) and concurrent-query counts, "no evidence that
any of the factors above have a significant impact" — but "by far the most
crucial factor in terms of query performance seems to be the specificity
of filter/selection predicates".

This bench regenerates the factor analysis over the detailed records of a
blocking engine (where run time is fully cost-determined) and asserts the
paper's conclusion: the violation-rate spread across *selectivity* buckets
dominates the spread across every other factor.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_overall, write_artifact
from repro.bench.experiments import exp_effects


def _spread(levels) -> float:
    rates = [stats["pct_violated"] for stats in levels.values() if stats["queries"] >= 5]
    if len(rates) < 2:
        return 0.0
    return max(rates) - min(rates)


def _render(effects) -> str:
    lines = ["Exp. 4 — factor analysis (monetdb-sim, TR=3s, mixed workload)", ""]
    for factor, levels in effects.items():
        lines.append(f"{factor}:")
        for level, stats in levels.items():
            lines.append(
                f"  {level:<22} queries={stats['queries']:>5.0f} "
                f"violated={stats['pct_violated']:>5.1f}% "
                f"missing={stats['mean_missing']:>6.3f}"
            )
        lines.append("")
    return "\n".join(lines)


def test_exp4_effects(benchmark, ctx, overall_cache, results_dir):
    results = get_overall(ctx, overall_cache)
    # Structural factors are analyzed over single-query interactions so the
    # concurrency confound (link bursts are exactly the filtered queries)
    # does not masquerade as a selectivity/dimensionality effect.
    singles = [
        r for r in results.records[("monetdb-sim", 3.0)] if r.num_concurrent == 1
    ]
    effects = benchmark.pedantic(
        lambda: exp_effects(singles), rounds=1, iterations=1
    )
    # Concurrency itself is analyzed over all records.
    all_effects = exp_effects(results.records[("monetdb-sim", 3.0)])
    effects["concurrency"] = all_effects["concurrency"]
    write_artifact(results_dir, "exp4_effects.txt", _render(effects))

    selectivity_spread = _spread(effects["selectivity"])
    other_spreads = {
        factor: _spread(levels)
        for factor, levels in effects.items()
        if factor not in ("selectivity", "agg_type", "concurrency")
    }
    # Selectivity is the dominant structural factor (§5.5): its spread
    # exceeds the other structural factors' spreads.
    for factor, spread in other_spreads.items():
        assert selectivity_spread >= spread - 10.0, (factor, spread)
    assert selectivity_spread > 10.0

    # Narrow predicates run faster → fewer violations than broad ones.
    narrow = effects["selectivity"]["narrow (<5%)"]["pct_violated"]
    broad = effects["selectivity"]["broad (>=50%)"]["pct_violated"]
    assert narrow < broad
