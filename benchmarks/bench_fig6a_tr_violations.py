"""Fig. 6a — ratio of TR violations vs. increasing time requirement.

Paper artifact: one line per system over TR ∈ {0.5, 1, 3, 5, 10} s on the
mixed workload. Expected shape: MonetDB decreasing, XDB flat and high,
System X collapsing to zero after 1 s, IDEA at (almost) zero throughout.
"""

from __future__ import annotations

from benchmarks.conftest import get_overall, write_artifact
from repro.bench.experiments import MAIN_ENGINES
from repro.common.config import DEFAULT_TIME_REQUIREMENTS


def _render(series) -> str:
    lines = ["Fig. 6a — %TR violations vs time requirement", ""]
    header = f"{'engine':<14} " + " ".join(f"{tr:>7}s" for tr in DEFAULT_TIME_REQUIREMENTS)
    lines.append(header)
    lines.append("-" * len(header))
    for engine in MAIN_ENGINES:
        cells = " ".join(f"{value:>7.1f}%" for _tr, value in series[engine])
        lines.append(f"{engine:<14} {cells}")
    return "\n".join(lines)


def test_fig6a_tr_violations(benchmark, ctx, overall_cache, results_dir):
    results = get_overall(ctx, overall_cache)

    def extract():
        return results.series("pct_tr_violated")

    series = benchmark.pedantic(extract, rounds=1, iterations=1)
    write_artifact(results_dir, "fig6a_tr_violations.txt", _render(series))

    monet = [v for _t, v in series["monetdb-sim"]]
    idea = [v for _t, v in series["idea-sim"]]
    xdb = [v for _t, v in series["xdb-sim"]]
    assert monet == sorted(monet, reverse=True)
    assert all(v <= 5.0 for v in idea)
    assert max(xdb) - min(xdb) < 10.0
