"""Fig. 6f — effect of think time on missing bins (Exp. 3, §5.4).

Paper artifact: the custom four-interaction workflow (2-D 100-bin count of
arrival vs departure delays; 1-D 25-bin carrier count; link; single-carrier
selection) on IDEA's speculative extension, 500M data, TR=3 s, think times
1–10 s; reported is the proportion of missing bins of the selection-
triggered query.

Expected shape: missing bins decrease as think time grows — the speculative
per-bin queries accumulate sample during idle time, so the selected bin's
query starts with a head start.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.bench.experiments import exp_think_time

THINK_TIMES = tuple(float(t) for t in range(1, 11))


def _render(with_speculation, without_speculation) -> str:
    lines = ["Fig. 6f — missing bins vs think time (IDEA, TR=3s, 500M)", ""]
    header = f"{'think time':>10} {'speculative':>12} {'baseline':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for (think, missing_spec), (_t, missing_base) in zip(
        with_speculation, without_speculation
    ):
        lines.append(f"{think:>9.0f}s {missing_spec:>12.3f} {missing_base:>10.3f}")
    return "\n".join(lines)


def test_fig6f_thinktime(benchmark, ctx, results_dir):
    with_speculation = benchmark.pedantic(
        lambda: exp_think_time(ctx, think_times=THINK_TIMES, speculation=True),
        rounds=1,
        iterations=1,
    )
    without_speculation = exp_think_time(
        ctx, think_times=THINK_TIMES, speculation=False
    )
    write_artifact(
        results_dir,
        "fig6f_thinktime.txt",
        _render(with_speculation, without_speculation),
    )

    missing = [m for _t, m in with_speculation]
    baseline = [m for _t, m in without_speculation]

    # Trend: more think time → fewer (or equal) missing bins; the long end
    # must strictly beat the short end.
    assert missing[-1] < missing[0]
    # Weak monotonicity (bins are discrete, so allow plateaus).
    assert all(b <= a + 1e-9 for a, b in zip(missing, missing[1:]))

    # Speculation never hurts: pointwise no worse than the baseline (which
    # itself varies slightly at think < TR because earlier queries still
    # share capacity with the selection query).
    assert all(s <= b + 1e-9 for s, b in zip(missing, baseline))
    # And at long think times it strictly wins.
    assert missing[-1] < baseline[-1]
