"""Acceptance benchmark for the compiled-query kernel layer.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--rows 120000]

Demonstrates the three promises ``docs/kernels.md`` makes:

1. **incremental speedup** — a progressive polling session (the same
   growing-prefix schedule the IDEA/XDB stand-ins execute) runs at least
   ``SPEEDUP_FLOOR`` (5×) faster through a cached
   :class:`CompiledQueryKernel` + :class:`PrefixKernelRun` than through
   the uncompiled per-poll ``compute_grouped_stats`` path, which
   re-aggregates the whole prefix every poll (O(n²) per session);
2. **cache effectiveness** — replaying the shared-engine session-server
   workload hits the process-wide kernel cache far more often than it
   misses (headline hit rate);
3. **byte neutrality** — every golden report/transcript in
   ``tests/golden/`` rebuilds byte-identically with kernels enabled
   *and* with kernels disabled (the A/B switch), mirroring
   ``bench_obs.py``'s corpus check.

Results land in ``benchmarks/results/kernels.txt`` and the headline
numbers in ``benchmarks/results/BENCH_kernels.json``.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

import numpy as np

from repro.bench.experiments import ExperimentContext
from repro.common.clock import perf_seconds
from repro.common.config import BenchmarkSettings, DataSize
from repro.common.rng import derive_seed
from repro.data.seed import generate_flights_seed
from repro.data.storage import Dataset
from repro.engines.kernel_cache import (
    clear_kernel_cache,
    get_kernel,
    kernel_cache,
    set_kernels_enabled,
)
from repro.query.filters import RangePredicate
from repro.query.groundtruth import compute_grouped_stats
from repro.query.kernels import PrefixKernelRun
from repro.query.model import AggFunc, Aggregate, AggQuery, BinDimension, BinKind
from repro.server import SessionManager

try:  # package import (repo root on sys.path)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation: benchmarks/ is sys.path[0]
    from benchjson import artifact_identity, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Minimum compiled-vs-naive speedup on the polling workload (ISSUE 7).
SPEEDUP_FLOOR = 5.0


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_golden_bench_kernels", REPO_ROOT / "tools" / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regen_golden_bench_kernels", module)
    spec.loader.exec_module(module)
    return module


def _bench_queries():
    """The polling workload: the shapes progressive sessions actually poll."""
    return [
        AggQuery(
            table="flights",
            bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
            aggregates=(Aggregate(AggFunc.COUNT),),
        ),
        AggQuery(
            table="flights",
            bins=(BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, width=20.0),),
            aggregates=(Aggregate(AggFunc.AVG, "ARR_DELAY"),),
        ),
        AggQuery(
            table="flights",
            bins=(
                BinDimension("MONTH", BinKind.QUANTITATIVE, width=1.0),
                BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),
            ),
            aggregates=(
                Aggregate(AggFunc.COUNT),
                Aggregate(AggFunc.SUM, "DISTANCE"),
            ),
            filter=RangePredicate("DEP_DELAY", -15.0, 180.0),
        ),
    ]


def _rotation_slice(permutation, offset, n):
    rows = len(permutation)
    end = offset + n
    if end <= rows:
        return permutation[offset:end]
    return np.concatenate([permutation[offset:], permutation[: end - rows]])


def _schedule(rows, polls):
    return [max(1, (i + 1) * rows // polls) for i in range(polls)]


def _time_naive(dataset, queries, permutation, polls, seed):
    rows = len(permutation)
    started = perf_seconds()
    for query in queries:
        offset = derive_seed(seed, "bench", "rotation", query) % rows
        for n in _schedule(rows, polls):
            compute_grouped_stats(
                dataset, query, _rotation_slice(permutation, offset, n)
            )
    return perf_seconds() - started


def _time_kernels(dataset, queries, permutation, polls, seed):
    rows = len(permutation)
    clear_kernel_cache()
    started = perf_seconds()
    for query in queries:
        offset = derive_seed(seed, "bench", "rotation", query) % rows
        run = PrefixKernelRun(get_kernel(dataset, query), permutation, offset)
        for n in _schedule(rows, polls):
            run.poll(n)
    return perf_seconds() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=120_000,
                        help="actual rows in the polling workload's table")
    parser.add_argument("--polls", type=int, default=40,
                        help="polls per query session (growing prefixes)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per mode (best-of wins)")
    parser.add_argument("--sessions", type=int, default=4,
                        help="session-server sessions for the hit-rate probe")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    lines = [
        f"compiled-kernel benchmark — {len(_bench_queries())} queries × "
        f"{args.polls} growing-prefix polls over {args.rows:,} rows",
        "",
    ]
    ok = True

    # 1. Step throughput: incremental kernel polling vs. naive re-aggregation.
    table = generate_flights_seed(args.rows, seed=args.seed)
    dataset = Dataset.from_table(table)
    queries = _bench_queries()
    permutation = np.random.default_rng(args.seed).permutation(args.rows)

    naive_seconds = min(
        _time_naive(dataset, queries, permutation, args.polls, args.seed)
        for _ in range(max(1, args.reps))
    )
    kernel_seconds = min(
        _time_kernels(dataset, queries, permutation, args.polls, args.seed)
        for _ in range(max(1, args.reps))
    )
    speedup = naive_seconds / kernel_seconds if kernel_seconds else float("inf")
    lines.append(
        f"poll wall time (best of {args.reps}): naive {naive_seconds:.3f}s, "
        f"kernels {kernel_seconds:.3f}s — speedup {speedup:.1f}× "
        f"(floor {SPEEDUP_FLOOR:.0f}×)"
    )
    if speedup < SPEEDUP_FLOOR:
        lines.append(
            f"FAIL: speedup {speedup:.1f}× below the {SPEEDUP_FLOOR:.0f}× floor"
        )
        ok = False

    # 2. Cache hit rate on the real shared-engine session workload.
    settings = BenchmarkSettings(
        data_size=DataSize.S, scale=2000, seed=args.seed, time_requirement=1.0
    )
    ctx = ExperimentContext(settings)
    clear_kernel_cache()
    SessionManager.for_engine(
        ctx, "idea-sim", args.sessions, per_session=2, share_engine=True
    ).run()
    stats = kernel_cache().stats()
    lookups = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / lookups if lookups else 0.0
    lines.append(
        f"session-server cache: {stats['hits']} hits / {stats['misses']} misses "
        f"({100 * hit_rate:.1f}% hit rate, {stats['entries']} entries, "
        f"{stats['evictions']} evictions)"
    )
    if lookups == 0:
        lines.append("FAIL: the workload never consulted the kernel cache")
        ok = False

    # 3. Golden corpus byte-identical with kernels on AND off.
    regen = _load_regen()
    golden_ctx = regen.build_context()
    changed = []
    for name, builder in regen.GOLDEN_CASES.items():
        if name.startswith("trace_"):
            continue  # the trace pins themselves; covered by tier-1
        pinned = (GOLDEN_DIR / name).read_bytes()
        if builder(golden_ctx).encode("utf-8") != pinned:
            changed.append(f"{name} (kernels on)")
        previous = set_kernels_enabled(False)
        try:
            if builder(golden_ctx).encode("utf-8") != pinned:
                changed.append(f"{name} (kernels off)")
        finally:
            set_kernels_enabled(previous)
    lines.append(
        f"golden corpus unchanged under kernels (both A/B sides): "
        f"{not changed}"
    )
    if changed:
        lines.append(f"FAIL: golden bytes changed: {', '.join(changed)}")
        ok = False

    lines.append("")
    lines.append("PASS" if ok else "FAIL")

    text = "\n".join(lines)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "kernels.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "artifact": "kernels.txt",
        "ok": ok,
        "rows": args.rows,
        "polls": args.polls,
        "reps": args.reps,
        "naive_seconds": naive_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "cache_evictions": stats["evictions"],
        "cache_hit_rate": hit_rate,
        "golden_unchanged": not changed,
    }
    payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "kernels", payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
