"""Fig. 6e — TR violations: normalized vs. de-normalized schema.

Paper artifact: MonetDB and approXimateDB on 100M and 500M datasets, each
in star-schema (normalized) and flat (de-normalized) form.

Expected shape (§5.3): "both MonetDB and approXimateDB perform slightly
better in terms of time requirement violations with a normalized schema
… MonetDB's proportion of TR violations grows with the size of the
normalized dataset. Conversely, approXimateDB is able to keep it roughly
at the same level, due to its online join support."
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.bench.experiments import exp_schema
from repro.common.config import DataSize

ENGINES = ("monetdb-sim", "xdb-sim")
TR = 1.0  # tight enough that schema effects are visible at both sizes


def _render(outcome) -> str:
    lines = [f"Fig. 6e — %TR violations by schema (TR={TR}s)", ""]
    header = f"{'engine':<14} {'size':>5} {'denormalized':>13} {'normalized':>11}"
    lines.append(header)
    lines.append("-" * len(header))
    for engine in ENGINES:
        for size in ("S", "M"):
            denorm = outcome[(engine, size, "denormalized")]
            norm = outcome[(engine, size, "normalized")]
            lines.append(
                f"{engine:<14} {size:>5} {denorm:>12.1f}% {norm:>10.1f}%"
            )
    return "\n".join(lines)


def test_fig6e_normalized(benchmark, ctx, results_dir):
    outcome = benchmark.pedantic(
        lambda: exp_schema(ctx, time_requirement=TR), rounds=1, iterations=1
    )
    write_artifact(results_dir, "fig6e_normalized.txt", _render(outcome))

    # Normalized is not worse (slightly better overall) for both engines.
    for engine in ENGINES:
        for size in ("S", "M"):
            assert outcome[(engine, size, "normalized")] <= (
                outcome[(engine, size, "denormalized")] + 3.0
            )

    # MonetDB violations grow with the normalized dataset size…
    assert outcome[("monetdb-sim", "M", "normalized")] > (
        outcome[("monetdb-sim", "S", "normalized")]
    )
    # …while XDB stays roughly level thanks to online joins.
    assert abs(
        outcome[("xdb-sim", "M", "normalized")]
        - outcome[("xdb-sim", "S", "normalized")]
    ) < 10.0
