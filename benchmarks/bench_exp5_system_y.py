"""Exp. 5 (§5.6) — System Y: an IDE frontend over MonetDB.

Paper finding: replaying 1:N workflows through the commercial frontend,
"System Y renders and updates the visualizations in the workload roughly
at the same speed as when one uses MonetDB directly, with an added delay
of about 1-2s per query" — and no prefetching/pre-computation layer was
found.

This bench replays three 1:N workflow variants through the frontend
simulator and through MonetDB directly, comparing end-to-end latency of
answered queries.
"""

from __future__ import annotations

import math

from benchmarks.conftest import write_artifact
from repro.bench.experiments import exp_system_y


def _render(outcome) -> str:
    lines = ["Exp. 5 — System Y (frontend over MonetDB) vs MonetDB, 1:N workflows", ""]
    header = (
        f"{'engine':<14} {'queries':>8} {'answered':>9} "
        f"{'%TR viol':>9} {'mean latency':>13}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for engine, stats in outcome.items():
        latency = stats["mean_latency_answered"]
        latency_text = "nan" if math.isnan(latency) else f"{latency:.2f}s"
        lines.append(
            f"{engine:<14} {stats['num_queries']:>8.0f} "
            f"{stats['num_answered']:>9.0f} {stats['pct_violated']:>8.1f}% "
            f"{latency_text:>13}"
        )
    overhead = outcome["system-y-sim"]["paired_overhead"]
    lines.append("")
    lines.append(f"paired per-query rendering overhead: {overhead:.2f}s")
    return "\n".join(lines)


def test_exp5_system_y(benchmark, ctx, results_dir):
    outcome = benchmark.pedantic(
        lambda: exp_system_y(ctx, num_variants=3), rounds=1, iterations=1
    )
    write_artifact(results_dir, "exp5_system_y.txt", _render(outcome))

    monet = outcome["monetdb-sim"]
    system_y = outcome["system-y-sim"]

    # Same workload on both engines.
    assert monet["num_queries"] == system_y["num_queries"]

    # "Roughly at the same speed … with an added delay of about 1-2s",
    # measured pairwise over queries both engines answered.
    assert 0.8 <= system_y["paired_overhead"] <= 2.2

    # The frontend can only lose queries to the extra delay, never gain.
    assert system_y["pct_violated"] >= monet["pct_violated"]
