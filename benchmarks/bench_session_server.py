"""Acceptance benchmark for the asyncio session server.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_session_server.py [--sessions 4]

Demonstrates, with ≥ 4 concurrent simulated IDE sessions:

1. **serial equivalence** — in isolated mode, every session's detailed
   report is byte-identical to running the same workflows through the
   serial ``BenchmarkDriver`` (the server's core determinism guarantee,
   docs/server.md);
2. **true multiplexing** — the global step trace interleaves sessions
   (it is not N back-to-back blocks), i.e. sessions genuinely progress
   concurrently in virtual time;
3. **shared-engine serving** — all sessions contend on ONE engine under
   per-session fair scheduling (``FairSessionPolicy``): the run is
   deterministic (two runs produce identical bytes) and the contention
   is visible as added latency / TR violations relative to isolated
   serving;
4. **pacing invariance** — an accelerated wall-clock run produces the
   same bytes as an unpaced run.

Results land in ``benchmarks/results/session_server.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import ExperimentContext
from repro.common.config import BenchmarkSettings, DataSize
from repro.server import SessionManager, serial_baseline, total_records

try:  # package import (repo root on sys.path)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation: benchmarks/ is sys.path[0]
    from benchjson import artifact_identity, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"


def _run(ctx, engine: str, sessions: int, per_session: int, **kwargs):
    manager = SessionManager.for_engine(
        ctx, engine, sessions, per_session=per_session, **kwargs
    )
    results = manager.run()
    return manager, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=4,
                        help="concurrent sessions (>= 4 for acceptance)")
    parser.add_argument("--per-session", type=int, default=2, dest="per_session")
    parser.add_argument("--engine", default="idea-sim")
    parser.add_argument("--scale", type=int, default=2000,
                        help="virtual-to-actual scale (2000 → 50k rows at S)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=args.scale,
        seed=args.seed,
        time_requirement=1.0,
    )
    ctx = ExperimentContext(settings)
    lines = [
        f"session server benchmark — {args.sessions} sessions × "
        f"{args.per_session} mixed workflows on {args.engine}, "
        f"{settings.actual_rows:,} actual rows",
        "",
    ]
    ok = True

    # 1. Serial equivalence (isolated mode).
    manager, results = _run(
        ctx, args.engine, args.sessions, args.per_session, trace_capture=True
    )
    baseline = serial_baseline(ctx, args.engine, manager.specs)
    mismatched = [
        result.session_id
        for result, reference in zip(results, baseline)
        if result.csv_text() != reference.csv_text()
    ]
    lines.append(
        f"isolated: {total_records(results)} queries across "
        f"{args.sessions} sessions in {manager.wall_seconds:.2f}s wall"
    )
    if mismatched:
        lines.append(
            f"FAIL: sessions {', '.join(mismatched)} differ from serial runs"
        )
        ok = False
    else:
        lines.append(
            f"per-session reports byte-identical to serial runs: True"
        )

    # 2. True multiplexing: the step trace must interleave sessions.
    switches = sum(
        1 for a, b in zip(manager.trace, manager.trace[1:]) if a[1] != b[1]
    )
    lines.append(
        f"step trace: {len(manager.trace)} events, {switches} session switches"
    )
    if args.sessions >= 2 and switches < args.sessions:
        lines.append(
            f"FAIL: only {switches} switches — sessions ran back to back, "
            f"not concurrently"
        )
        ok = False

    # 3. Shared-engine serving: deterministic, contention visible.
    shared_a, results_a = _run(
        ctx, args.engine, args.sessions, args.per_session, share_engine=True
    )
    shared_b, results_b = _run(
        ctx, args.engine, args.sessions, args.per_session, share_engine=True
    )
    identical = all(
        a.csv_text() == b.csv_text() for a, b in zip(results_a, results_b)
    )
    lines.append("")
    lines.append(
        f"shared engine: {args.sessions} sessions contending on one "
        f"{args.engine} instance (per-session fair scheduling)"
    )
    lines.append(f"two shared-engine runs byte-identical: {identical}")
    if not identical:
        lines.append("FAIL: shared-engine serving is nondeterministic")
        ok = False

    def mean_latency(session_results):
        latencies = [
            r.end_time - r.start_time
            for result in session_results
            for r in result.records
            if not r.tr_violated
        ]
        return sum(latencies) / len(latencies) if latencies else float("nan")

    iso_latency = mean_latency(results)
    shared_latency = mean_latency(results_a)
    iso_viol = sum(r.tr_violated for result in results for r in result.records)
    shared_viol = sum(
        r.tr_violated for result in results_a for r in result.records
    )
    lines.append(
        f"contention: latency {iso_latency:.2f}s → {shared_latency:.2f}s, "
        f"TR violations {iso_viol} → {shared_viol}"
    )
    contended = any(
        a.csv_text() != b.csv_text() for a, b in zip(results, results_a)
    )
    lines.append(f"shared results differ from isolated (contention): {contended}")
    if not contended:
        lines.append(
            "FAIL: shared-engine results equal isolated ones — sessions "
            "are not actually sharing capacity"
        )
        ok = False

    # 4. Pacing invariance: accelerated wall pacing changes nothing.
    _, paced = _run(
        ctx, args.engine, 2, 1, accel=500_000.0
    )
    _, unpaced = _run(ctx, args.engine, 2, 1)
    pacing_ok = all(
        a.csv_text() == b.csv_text() for a, b in zip(paced, unpaced)
    )
    lines.append("")
    lines.append(f"accelerated pacing byte-identical to unpaced: {pacing_ok}")
    if not pacing_ok:
        lines.append("FAIL: wall-clock pacing leaked into the simulation")
        ok = False

    lines.append("")
    lines.append("PASS" if ok else "FAIL")

    text = "\n".join(lines)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "session_server.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "artifact": "session_server.txt",
        "ok": ok,
        "sessions": args.sessions,
        "per_session": args.per_session,
        "queries": total_records(results),
        "isolated_wall_seconds": manager.wall_seconds,
        "isolated_mean_latency": iso_latency,
        "shared_mean_latency": shared_latency,
        "isolated_tr_violations": iso_viol,
        "shared_tr_violations": shared_viol,
        "shared_deterministic": identical,
        "pacing_invariant": pacing_ok,
    }
    payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "session_server", payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
