"""§6 — data-size sweep: S (100M), M (500M), L (1B).

Paper claim (§6, Main Findings): *"progressive and AQP systems like IDEA
and System X were able to keep time violations at a minimum while
maintaining low error rates with increasing data sizes and time
requirements. This is in stark contrast to classical analytical databases
represented by MonetDB where time violations increase for larger
datasets."*

This bench runs the mixed workload at TR=3 s on all three default sizes
and checks exactly that contrast. (Fig. 5 itself fixes the size at 500M;
the size sensitivity is a §6 narrative claim, reproduced here.)
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.bench.experiments import exp_overall
from repro.common.config import DataSize

ENGINES = ("monetdb-sim", "idea-sim", "system-x-sim")
SIZES = (DataSize.S, DataSize.M, DataSize.L)
TR = 3.0


def _run(ctx):
    outcome = {}
    for size in SIZES:
        results = exp_overall(
            ctx, engines=ENGINES, time_requirements=(TR,), size=size
        )
        for engine in ENGINES:
            row = results.summaries[(engine, TR)]
            outcome[(engine, size.name)] = {
                "pct_violated": row.pct_tr_violated,
                "mre_median": row.mre_median,
                "missing": row.mean_missing_bins,
            }
    return outcome


def _render(outcome) -> str:
    lines = [f"§6 — size sweep at TR={TR}s (mixed workload)", ""]
    header = (
        f"{'engine':<14} {'size':>5} {'%TR viol':>9} {'MRE med':>8} "
        f"{'missing':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for engine in ENGINES:
        for size in SIZES:
            stats = outcome[(engine, size.name)]
            mre = stats["mre_median"]
            mre_text = f"{mre:.3f}" if mre == mre else "exact"
            lines.append(
                f"{engine:<14} {size.name:>5} {stats['pct_violated']:>8.1f}% "
                f"{mre_text:>8} {stats['missing']:>8.3f}"
            )
    return "\n".join(lines)


def test_size_sweep(benchmark, ctx, results_dir):
    outcome = benchmark.pedantic(lambda: _run(ctx), rounds=1, iterations=1)
    write_artifact(results_dir, "size_sweep.txt", _render(outcome))

    # MonetDB: violations increase monotonically with data size.
    monet = [outcome[("monetdb-sim", size.name)]["pct_violated"] for size in SIZES]
    assert monet[0] <= monet[1] <= monet[2]
    assert monet[2] > monet[0] + 20.0  # the growth is substantial

    # IDEA: violations stay at (near) zero across sizes.
    idea = [outcome[("idea-sim", size.name)]["pct_violated"] for size in SIZES]
    assert max(idea) <= 2.0

    # System X: stays low too (its sample scales with the 1 % rate, but
    # per-query overhead dominates at every size).
    system_x = [
        outcome[("system-x-sim", size.name)]["pct_violated"] for size in SIZES
    ]
    assert max(system_x) <= 25.0

    # Error rates of the AQP engines stay in the same band across sizes
    # ("maintaining low error rates with increasing data sizes").
    for engine in ("idea-sim", "system-x-sim"):
        mres = [outcome[(engine, size.name)]["mre_median"] for size in SIZES]
        assert max(mres) - min(mres) < 0.15
