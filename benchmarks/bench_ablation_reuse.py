"""Ablation — IDEA's result reuse ([16], DESIGN.md design-choice index).

Not a paper figure: an ablation of a design choice the paper's IDEA
description relies on ("might or might not re-use previously computed
results [12, 16]"). IDE workloads re-issue structurally identical queries
constantly — clearing a filter restores the previous query; toggling a
selection alternates between two queries. Result reuse lets a progressive
engine *resume* those instead of restarting.

Setup: a custom workflow that toggles a selection back and forth between
two carriers, so the linked target's query alternates between two
predicates. Measured: mean missing bins of the target's queries in the
second half of the workflow, with reuse enabled vs disabled.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_artifact
from repro.bench.driver import BenchmarkDriver
from repro.common.clock import VirtualClock
from repro.engines.progressive import ProgressiveEngine
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import (
    CreateViz,
    Link,
    SelectBins,
    VizSpec,
    Workflow,
    WorkflowType,
)

TR = 0.5  # tight, so a cold restart cannot catch up with a resumed sample


def _toggle_workflow(ctx) -> Workflow:
    profiles = ctx.profiles(ctx.settings.data_size)
    carriers = profiles["UNIQUE_CARRIER"].categories
    first, second = carriers[0], carriers[1]
    dep = profiles["DEP_DELAY"]
    source = VizSpec(
        "carriers", "flights",
        bins=(BinDimension("UNIQUE_CARRIER", BinKind.NOMINAL),),
        aggregates=(Aggregate(AggFunc.COUNT),),
    )
    target = VizSpec(
        "delays", "flights",
        bins=(
            BinDimension("DEP_DELAY", BinKind.QUANTITATIVE, bin_count=50)
            .resolved(dep.minimum, dep.maximum),
        ),
        aggregates=(Aggregate(AggFunc.AVG, "ARR_DELAY"),),
    )
    toggles = tuple(
        SelectBins("carriers", ((first if i % 2 == 0 else second,),))
        for i in range(10)
    )
    return Workflow(
        name="toggle",
        workflow_type=WorkflowType.CUSTOM,
        interactions=(CreateViz(source), CreateViz(target),
                      Link("carriers", "delays")) + toggles,
    )


def _run(ctx, workflow, reuse: bool):
    settings = ctx.settings.with_(time_requirement=TR, think_time=2.0)
    dataset = ctx.dataset(settings.data_size)
    engine = ProgressiveEngine(dataset, settings, VirtualClock(), reuse=reuse)
    engine.prepare()
    driver = BenchmarkDriver(engine, ctx.oracle(settings.data_size), settings)
    records = driver.run_workflow(workflow)
    # The target's queries triggered by the second half of the toggles —
    # by then each of the two alternating queries has prior partial work.
    late = [
        r for r in records
        if r.viz_name == "delays" and r.interaction_id >= 8
    ]
    return float(np.mean([r.metrics.missing_bins for r in late])), records


def _render(with_reuse, without_reuse) -> str:
    lines = ["Ablation — result reuse (IDEA, toggled selection, TR=0.5s)", ""]
    lines.append(f"{'variant':<18} {'missing bins (late queries)':>28}")
    lines.append("-" * 48)
    lines.append(f"{'with reuse':<18} {with_reuse:>28.3f}")
    lines.append(f"{'without reuse':<18} {without_reuse:>28.3f}")
    return "\n".join(lines)


def test_ablation_reuse(benchmark, ctx, results_dir):
    workflow = _toggle_workflow(ctx)

    def run_both():
        with_reuse, _ = _run(ctx, workflow, reuse=True)
        without_reuse, _ = _run(ctx, workflow, reuse=False)
        return with_reuse, without_reuse

    with_reuse, without_reuse = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    write_artifact(
        results_dir, "ablation_reuse.txt", _render(with_reuse, without_reuse)
    )

    # Reuse must strictly reduce missing bins on re-issued queries.
    assert with_reuse < without_reuse
