"""Table 1 — the detailed per-query benchmark report.

Paper artifact: one row per executed query of a single mixed workflow run
on IDEA at TR=500 ms, think time 3 s, 500M rows — with the columns id,
interaction, viz_name, driver, data size, think time, time requirement,
workflow, start/end times, tr_violated, bin dims, binning type, agg type,
bins out-of-margin, bins delivered, bins in ground truth, relative error
avg/stdev, missing bins, cosine distance, margin avg/stdev.

The regenerated CSV is written next to the other artifacts; assertions
check the Table-1 invariants visible in the published example (timestamps
bounded by TR, delivered ⊆ ground-truth bins, metrics within range).
"""

from __future__ import annotations

import csv
import io

from benchmarks.conftest import write_artifact
from repro.bench.experiments import exp_detailed_table


def test_table1_detailed(benchmark, ctx, results_dir):
    report = benchmark.pedantic(
        lambda: exp_detailed_table(ctx), rounds=1, iterations=1
    )
    buffer = io.StringIO()
    report.to_csv(buffer)
    write_artifact(results_dir, "table1_detailed.csv", buffer.getvalue().rstrip())

    rows = report.rows()
    assert len(rows) >= 10

    for row in rows:
        # Settings columns repeat the run configuration (Table 1).
        assert row["driver"] == "idea-sim"
        assert row["data_size"] == "M"
        assert row["think_time"] == 3.0
        assert row["time_req"] == 0.5
        assert row["workflow_type"] == "mixed"
        # Query lifetime bounded by the TR.
        assert 0.0 <= row["end_time"] - row["start_time"] <= 0.5 + 1e-6
        # Bin accounting.
        assert int(row["bins_delivered"]) <= int(row["bins_in_gt"]) or (
            int(row["bins_in_gt"]) == 0
        )
        if row["missing_bins"] != "":
            assert 0.0 <= float(row["missing_bins"]) <= 1.0

    # The run is interactive: IDEA answers nearly everything at 500 ms.
    violated = [row for row in rows if row["tr_violated"] is True]
    assert len(violated) <= max(1, len(rows) // 10)

    # Interaction ids are non-decreasing, query ids unique.
    interactions = [int(row["interaction"]) for row in rows]
    assert interactions == sorted(interactions)
    ids = [row["id"] for row in rows]
    assert len(set(ids)) == len(ids)
