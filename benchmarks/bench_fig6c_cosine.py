"""Fig. 6c — cosine distance ("shape" error) vs. time requirement.

Paper artifact: per-engine development of the cosine distance between the
returned result vector and the ground truth as the TR grows.

Expected shape: online/progressive engines (IDEA, XDB) converge toward 0
with more time; System X stays flat (fixed sample); MonetDB, when it
answers at all, is exact (distance 0).
"""

from __future__ import annotations

import math

from benchmarks.conftest import get_overall, write_artifact
from repro.bench.experiments import MAIN_ENGINES
from repro.common.config import DEFAULT_TIME_REQUIREMENTS


def _render(series) -> str:
    lines = ["Fig. 6c — mean cosine distance vs TR", ""]
    header = f"{'engine':<14} " + " ".join(f"{tr:>8}s" for tr in DEFAULT_TIME_REQUIREMENTS)
    lines.append(header)
    lines.append("-" * len(header))
    for engine in MAIN_ENGINES:
        cells = " ".join(
            ("     nan" if math.isnan(value) else f"{value:>8.4f}")
            for _tr, value in series[engine]
        )
        lines.append(f"{engine:<14} {cells}")
    return "\n".join(lines)


def test_fig6c_cosine(benchmark, ctx, overall_cache, results_dir):
    results = get_overall(ctx, overall_cache)
    series = benchmark.pedantic(
        lambda: results.series("cosine_mean"), rounds=1, iterations=1
    )
    write_artifact(results_dir, "fig6c_cosine.txt", _render(series))

    idea = dict(series["idea-sim"])
    xdb = dict(series["xdb-sim"])
    system_x = dict(series["system-x-sim"])
    monet = dict(series["monetdb-sim"])

    # Progressive engines improve with time.
    assert idea[10.0] <= idea[0.5]
    assert xdb[10.0] <= xdb[0.5]
    # System X flat after its queries fit (fixed sample).
    assert abs(system_x[3.0] - system_x[10.0]) < 0.05
    # MonetDB answers are exact whenever present.
    for tr, value in monet.items():
        if not math.isnan(value):
            assert value < 1e-9
