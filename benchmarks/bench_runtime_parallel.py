"""Acceptance benchmark for the parallel execution runtime.

Run directly (not through pytest)::

    PYTHONPATH=src python benchmarks/bench_runtime_parallel.py [--jobs 4]

Demonstrates, on an 8-cell matrix (4 engines × 2 TRs, mixed workload):

1. **correctness** — ``--jobs N`` produces a byte-identical summary CSV to
   ``--jobs 1``;
2. **speedup** — ≥ 2× wall-clock at ``--jobs 4`` (shared artifacts are
   pre-warmed into the store once; cells then run embarrassingly
   parallel). Cells are CPU-bound, so this assertion needs real cores:
   when fewer than 4 are available (e.g. a 1-core container) the script
   still *measures* the parallel run but reports the speedup check as
   SKIPPED rather than failed — multiprocessing cannot beat serial on a
   single core;
3. **caching** — a second run against the same artifact store restores
   every cell near-instantly.

Wall-clock numbers land in ``benchmarks/results/runtime_parallel.txt``.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.experiments import MAIN_ENGINES
from repro.common.config import BenchmarkSettings, DataSize
from repro.runtime import ArtifactStore, MatrixExecutor, matrix_csv_text, plan_overall

try:  # package import (repo root on sys.path)
    from benchmarks.benchjson import artifact_identity, write_bench_json
except ImportError:  # direct invocation: benchmarks/ is sys.path[0]
    from benchjson import artifact_identity, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--scale", type=int, default=1000,
                        help="virtual-to-actual scale (1000 → 100k rows at S)")
    parser.add_argument("--per-type", type=int, default=4, dest="per_type")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=args.scale,
        workflows_per_type=args.per_type,
        seed=args.seed,
    )
    specs = plan_overall(
        settings, MAIN_ENGINES, (0.5, 3.0), args.per_type, DataSize.S
    )
    cache_dir = Path(tempfile.mkdtemp(prefix="idebench-runtime-bench-"))
    lines = [
        f"runtime parallel benchmark — {len(specs)} cells "
        f"({len(MAIN_ENGINES)} engines × 2 TRs), "
        f"{settings.actual_rows:,} actual rows, "
        f"{args.per_type} mixed workflows/cell",
        "",
    ]
    try:
        # Warm shared artifacts once so both timed runs start from the
        # same state (the serial baseline would otherwise pay dataset
        # generation that the parallel run amortizes differently).
        warm_store = ArtifactStore(cache_dir)
        warm = MatrixExecutor(jobs=1, store=warm_store)
        warm._warm_shared_artifacts(specs)

        started = time.perf_counter()
        serial = MatrixExecutor(jobs=1, store=None).run(specs)
        serial_seconds = time.perf_counter() - started
        lines.append(f"serial   --jobs 1: {serial_seconds:7.2f}s")

        started = time.perf_counter()
        parallel = MatrixExecutor(jobs=args.jobs, store=ArtifactStore(cache_dir)).run(
            specs
        )
        parallel_seconds = time.perf_counter() - started
        speedup = serial_seconds / parallel_seconds
        lines.append(
            f"parallel --jobs {args.jobs}: {parallel_seconds:7.2f}s "
            f"(speedup {speedup:.2f}x)"
        )

        started = time.perf_counter()
        cached = MatrixExecutor(jobs=args.jobs, store=ArtifactStore(cache_dir)).run(
            specs
        )
        cached_seconds = time.perf_counter() - started
        lines.append(
            f"cached   --jobs {args.jobs}: {cached_seconds:7.2f}s "
            f"({sum(r.from_cache for r in cached)}/{len(cached)} cells restored)"
        )

        identical = (
            matrix_csv_text(serial)
            == matrix_csv_text(parallel)
            == matrix_csv_text(cached)
        )
        lines.append("")
        lines.append(f"summary CSVs byte-identical: {identical}")

        try:
            cores = len(os.sched_getaffinity(0))
        except AttributeError:
            cores = os.cpu_count() or 1

        ok = True
        if not identical:
            lines.append("FAIL: parallel/cached summaries differ from serial")
            ok = False
        if cores < args.jobs:
            lines.append(
                f"SKIP: speedup check needs >= {args.jobs} cores, "
                f"only {cores} available (measured {speedup:.2f}x)"
            )
        elif speedup < 2.0:
            lines.append(f"FAIL: speedup {speedup:.2f}x below the 2x target")
            ok = False
        if not all(r.from_cache for r in cached):
            lines.append("FAIL: second run re-executed cells")
            ok = False
        if cached_seconds > max(1.0, 0.1 * serial_seconds):
            lines.append("FAIL: cached re-run is not near-instant")
            ok = False
        if ok:
            lines.append("PASS")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    text = "\n".join(lines)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "runtime_parallel.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "artifact": "runtime_parallel.txt",
        "ok": "PASS" in lines,
        "jobs": args.jobs,
        "cells": len(specs),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "cached_seconds": cached_seconds,
        "speedup": speedup,
        "summary_identical": identical,
    }
    payload.update(artifact_identity(text))
    write_bench_json(RESULTS_DIR, "runtime_parallel", payload)
    return 0 if "PASS" in lines else 1


if __name__ == "__main__":
    sys.exit(main())
