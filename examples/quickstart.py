#!/usr/bin/env python3
"""Quickstart: run IDEBench end to end in under a minute.

This walks the full §4 pipeline on a small configuration:

1. generate the flights seed and scale it with the Gaussian copula (§4.2);
2. generate a mixed workflow suite (§4.3);
3. run it on the IDEA-like progressive engine under a 1-second time
   requirement (§4.4–4.6);
4. print the per-workflow-type summary report (§4.8).

Run with::

    python examples/quickstart.py
"""

from repro import BenchmarkSettings, BenchmarkDriver, DataSize, SummaryReport
from repro.bench.experiments import ExperimentContext, make_engine
from repro.common.clock import VirtualClock
from repro.workflow.spec import WorkflowType


def main() -> None:
    # S = 100M virtual rows; scale 5000 → 20k actual rows: fast, honest.
    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=5000,
        time_requirement=1.0,
        think_time=1.0,
        seed=7,
    )
    ctx = ExperimentContext(settings)

    print("1. scaling seed dataset with the Gaussian copula …")
    dataset = ctx.dataset(settings.data_size)
    print(f"   {dataset}")

    print("2. generating workflows (Markov-chain samplers) …")
    workflows = []
    for workflow_type in (WorkflowType.INDEPENDENT, WorkflowType.ONE_TO_N,
                          WorkflowType.MIXED):
        workflows.extend(ctx.workflows(workflow_type, 2))
    print(f"   {len(workflows)} workflows, "
          f"{sum(w.num_interactions for w in workflows)} interactions total")

    print("3. preparing the progressive engine (idea-sim) …")
    engine = make_engine("idea-sim", dataset, settings, VirtualClock())
    prep = engine.prepare()
    print(f"   modeled data preparation: {prep.minutes:.1f} min "
          f"(for {prep.virtual_rows:,} virtual rows)")

    print("4. running the benchmark …")
    driver = BenchmarkDriver(engine, ctx.oracle(settings.data_size), settings)
    records = driver.run_suite(workflows)

    print()
    print(SummaryReport(records).render(
        f"quickstart: idea-sim @ TR={settings.time_requirement}s"
    ))
    print()
    answered = [r for r in records if not r.tr_violated]
    print(f"{len(records)} queries, {len(answered)} answered within the TR; "
          f"fastest answer used {min(r.fraction for r in answered):.1%} of the data.")


if __name__ == "__main__":
    main()
