#!/usr/bin/env python3
"""Which engine for which interactivity requirement? (the paper's question)

Runs the mixed workload across all four simulated systems and a sweep of
time requirements, then prints the speed/quality trade-off table of Fig. 5
and answers the intro's motivating questions with the measured numbers:

* When would MonetDB simply outperform an approximate engine?
* How much do pre-computed stratified samples (System X) buy — and cost?
* Which of two approximate engines is better (IDEA vs XDB), and why?

Run with::

    python examples/compare_engines.py
"""

from repro import BenchmarkSettings, DataSize
from repro.bench.experiments import (
    ExperimentContext,
    MAIN_ENGINES,
    exp_overall,
    exp_prep_times,
)

TIME_REQUIREMENTS = (0.5, 1.0, 3.0, 10.0)


def main() -> None:
    # M = 500M virtual rows (the paper's headline size) over 200k actual.
    settings = BenchmarkSettings(
        data_size=DataSize.M, scale=2500, workflows_per_type=4, seed=13
    )
    ctx = ExperimentContext(settings)

    print("running 4 engines × 4 time requirements on the mixed workload …\n")
    results = exp_overall(
        ctx, engines=MAIN_ENGINES, time_requirements=TIME_REQUIREMENTS
    )
    prep = exp_prep_times(ctx)

    header = (
        f"{'engine':<14} {'prep':>7} " + "".join(
            f"{f'viol@{tr}s':>10}" for tr in TIME_REQUIREMENTS
        ) + f" {'MRE med@1s':>11} {'missing@1s':>11}"
    )
    print(header)
    print("-" * len(header))
    for engine in MAIN_ENGINES:
        cells = "".join(
            f"{results.summaries[(engine, tr)].pct_tr_violated:>9.1f}%"
            for tr in TIME_REQUIREMENTS
        )
        at_1s = results.summaries[(engine, 1.0)]
        mre = at_1s.mre_median
        mre_text = f"{mre:.3f}" if mre == mre else "exact/—"
        print(
            f"{engine:<14} {prep[engine].minutes:>6.0f}m {cells} "
            f"{mre_text:>11} {at_1s.mean_missing_bins:>10.1%}"
        )

    print()
    monet_10 = results.summaries[("monetdb-sim", 10.0)].pct_tr_violated
    idea_05 = results.summaries[("idea-sim", 0.5)].pct_tr_violated
    x_prep = prep["system-x-sim"].minutes
    idea_prep = prep["idea-sim"].minutes
    print("Findings (mirroring §6):")
    print(f"* With a 10s budget MonetDB violates only {monet_10:.0f}% — exact "
          "answers become viable once users tolerate double-digit latencies.")
    print(f"* IDEA answers {100 - idea_05:.0f}% of queries even at 500ms, with "
          "errors shrinking the longer the user waits (progressive).")
    print(f"* System X needs {x_prep:.0f} min of offline sampling vs IDEA's "
          f"{idea_prep:.0f} min, and waiting longer buys no quality — its "
          "sample is fixed ahead of the (unknown) workload.")
    print("* XDB's violations are flat across TRs: whatever its online "
          "COUNT/SUM path cannot run falls back to blocking scans.")


if __name__ == "__main__":
    main()
