#!/usr/bin/env python3
"""Session-server demo: three concurrent simulated IDE sessions.

IDEBench simulates *interactive* exploration — think-time-paced users
issuing concurrent queries (§2.2). This demo serves three such users at
once from one process with :class:`repro.server.SessionManager`:

1. build the shared dataset and ground-truth oracle once;
2. derive three deterministic per-session workflow suites
   (``derive_session_seed`` purpose strings — session *i* always gets
   the same suite, no matter how many neighbors it has);
3. serve them concurrently over one *shared* progressive engine, with a
   live metric stream printing every query verdict as its deadline is
   evaluated;
4. print the per-session summary table and the interleaving stats.

Run with::

    python examples/session_server_demo.py
"""

from repro import BenchmarkSettings, DataSize
from repro.bench.experiments import ExperimentContext
from repro.server import SessionManager, render_session_table


def main() -> None:
    # S = 100M virtual rows; scale 5000 → 20k actual rows: fast, honest.
    settings = BenchmarkSettings(
        data_size=DataSize.S,
        scale=5000,
        time_requirement=1.0,
        think_time=1.0,
        seed=7,
    )
    ctx = ExperimentContext(settings)

    print("1. building the shared dataset and oracle …")
    dataset = ctx.dataset(settings.data_size)
    print(f"   {dataset}")

    print("2. serving 3 sessions on one shared idea-sim engine …")
    verdicts = {"ok": 0, "VIOLATED": 0}

    def live(session_id: str, record) -> None:
        status = "VIOLATED" if record.tr_violated else "ok"
        verdicts[status] += 1
        print(
            f"   [{record.end_time:7.2f}s] {session_id} "
            f"q{record.query_id:<3} {record.viz_name:<8} {status}"
        )

    manager = SessionManager.for_engine(
        ctx,
        "idea-sim",
        num_sessions=3,
        per_session=1,
        share_engine=True,   # all three contend on one engine, fairly
        on_record=live,      # the per-session metric stream
        trace_capture=True,  # keep the (time, session) step marks below
    )
    results = manager.run()

    print("\n3. per-session summaries:")
    print(render_session_table(
        results, title="3 concurrent sessions, shared idea-sim engine"
    ))

    switches = sum(
        1 for a, b in zip(manager.trace, manager.trace[1:]) if a[1] != b[1]
    )
    total = sum(result.num_queries for result in results)
    print(
        f"\n{total} queries ({verdicts['ok']} answered, "
        f"{verdicts['VIOLATED']} TR-violated) in "
        f"{manager.wall_seconds:.2f}s wall; "
        f"{switches} session switches across {len(manager.trace)} events"
    )
    print(
        "\nSessions are seeded per-session: re-running this script (or "
        "serving 30 sessions instead of 3) reproduces each session's "
        "workload bit-for-bit. See docs/server.md."
    )


if __name__ == "__main__":
    main()
