#!/usr/bin/env python3
"""Plugging your own system into the benchmark (paper §4.5, Listing 1).

IDEBench evaluates any system that implements the five-method adapter
interface. This example builds a deliberately simple external "system" —
a uniform-sampling engine that answers every query from one fixed 2 %
random sample, SQL-in/values-out — and benchmarks it against the built-in
simulators on the same workflow.

It demonstrates the full integration surface a third party needs:

* receiving the benchmark's queries as **SQL text** and parsing them back
  (:func:`repro.query.parse_sql` — the same statements Fig. 4 shows);
* computing answers with its own means (here: the grouped-statistics
  kernel over its private sample);
* reporting results and margins back through an adapter.

Run with::

    python examples/custom_adapter.py
"""

import numpy as np

from repro import BenchmarkSettings, DataSize
from repro.bench.metrics import compute_metrics
from repro.common.rng import derive_rng
from repro.bench.experiments import ExperimentContext
from repro.engines.estimators import srs_estimate
from repro.query.groundtruth import GroundTruthOracle, compute_grouped_stats
from repro.query.model import QueryResult
from repro.query.sql import query_to_sql
from repro.query.sql_parser import parse_sql
from repro.workflow.graph import VizGraph
from repro.workflow.spec import WorkflowType


class TinySampleSystem:
    """An 'external' DBMS: fixed uniform sample, SQL interface."""

    def __init__(self, dataset, sample_rate: float = 0.02, seed: int = 0):
        self._dataset = dataset
        rng = derive_rng(seed, "tiny-sample-system")
        n = max(1, int(dataset.num_fact_rows * sample_rate))
        self._rows = np.sort(
            rng.choice(dataset.num_fact_rows, size=n, replace=False)
        )

    def execute_sql(self, sql: str) -> QueryResult:
        """The system's only entry point: SQL in, result out."""
        query = parse_sql(sql)  # ← the round-trip parser at work
        stats = compute_grouped_stats(self._dataset, query, self._rows)
        values, margins = srs_estimate(
            stats, len(self._rows), self._dataset.num_fact_rows, 0.95
        )
        return QueryResult(
            query=query, values=values, margins=margins,
            rows_processed=len(self._rows),
            fraction=len(self._rows) / self._dataset.num_fact_rows,
        )


class TinySampleAdapter:
    """Listing-1 adapter translating benchmark requests to SQL calls."""

    def __init__(self, system: TinySampleSystem):
        self.system = system

    def process_request(self, query) -> QueryResult:
        return self.system.execute_sql(query_to_sql(query))

    def link_vizs(self, viz_from, viz_to):
        pass  # no speculative execution in this toy system

    def delete_vizs(self, vizs):
        pass

    def workflow_start(self):
        pass

    def workflow_end(self):
        pass


def main() -> None:
    settings = BenchmarkSettings(
        data_size=DataSize.S, scale=2500, seed=99, workflows_per_type=2
    )
    ctx = ExperimentContext(settings)
    dataset = ctx.dataset(settings.data_size)
    oracle = GroundTruthOracle(dataset)

    system = TinySampleSystem(dataset, sample_rate=0.02, seed=99)
    adapter = TinySampleAdapter(system)

    workflow = ctx.workflows(WorkflowType.MIXED, 1)[0]
    print(f"replaying workflow {workflow.name!r} through the custom adapter\n")

    adapter.workflow_start()
    graph = VizGraph()
    header = f"{'interaction':>11} {'viz':<8} {'missing':>8} {'MRE':>7} {'OOM':>4}"
    print(header)
    print("-" * len(header))
    for index, interaction in enumerate(workflow.interactions):
        applied = graph.apply(interaction)
        for viz_name in applied.affected:
            query = graph.query_for(viz_name)
            result = adapter.process_request(query)
            metrics = compute_metrics(result, oracle.answer(query))
            mre = f"{metrics.rel_error_avg:.3f}" if (
                metrics.rel_error_avg == metrics.rel_error_avg
            ) else "  —"
            print(f"{index:>11} {viz_name:<8} {metrics.missing_bins:>7.1%} "
                  f"{mre:>7} {metrics.bins_out_of_margin:>4}")
    adapter.workflow_end()

    print(f"\nthe system answered every query from its fixed "
          f"{len(system._rows):,}-row sample — compare the missing-bin "
          "ratios with System X's stratified sample in compare_engines.py.")


if __name__ == "__main__":
    main()
