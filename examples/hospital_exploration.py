#!/usr/bin/env python3
"""The paper's §2.1 use case: Jean explores hospital admissions.

This example demonstrates two things at once:

* **custom datasets** — the §3.2 customizability requirement: any seed
  table can be plugged into the benchmark (here a synthetic electronic-
  health-records table) and scaled with the same copula machinery;
* **hand-written workflows** — Jean's eight-step exploration session is
  expressed as a custom workflow (create → filter → link → select), run
  against the progressive engine, and the per-step answers are printed the
  way an IDE frontend would show them.

The session, from the paper: Jean looks at the age distribution, then at
admissions per hour, filters to the emergency department, then to
weekends, finds the evening bump shifts to 10pm–12am, cross-filters the
age histogram by that time window, and sees 20–35-year-olds over-
represented; their most frequent problem is head trauma.

Run with::

    python examples/hospital_exploration.py
"""

import numpy as np

from repro import BenchmarkSettings, DataSize
from repro.bench.adapters import SystemAdapter
from repro.common.rng import derive_rng
from repro.data.generator import scale_dataset
from repro.data.storage import Dataset, Table
from repro.engines.progressive import ProgressiveEngine
from repro.common.clock import VirtualClock
from repro.query.filters import And, RangePredicate, SetPredicate
from repro.query.model import AggFunc, Aggregate, BinDimension, BinKind
from repro.workflow.spec import VizSpec

DEPARTMENTS = ("emergency", "surgery", "cardiology", "oncology", "maternity")
PROBLEMS = (
    "head trauma", "fracture", "chest pain", "infection", "laceration",
    "appendicitis", "burn", "stroke",
)


def make_patients_seed(num_rows: int = 40_000, seed: int = 2020) -> Table:
    """Synthesize 20 years of admissions with the patterns Jean finds."""
    rng = derive_rng(seed, "hospital-seed")
    age = np.clip(rng.normal(48.0, 21.0, num_rows), 0, 100)
    department = rng.choice(DEPARTMENTS, num_rows, p=[0.38, 0.2, 0.16, 0.14, 0.12])
    day = rng.choice(np.arange(1, 8), num_rows,
                     p=[0.15, 0.15, 0.15, 0.15, 0.14, 0.13, 0.13])
    weekend = day >= 6

    # Admissions cluster in business hours, plus an evening bump from the
    # emergency department that shifts to 10pm–12am on weekends.
    base_hour = np.clip(rng.normal(13.0, 3.5, num_rows), 0, 23)
    bump = (department == "emergency") & (rng.random(num_rows) < 0.45)
    evening = np.where(weekend, rng.uniform(22.0, 24.0, num_rows),
                       rng.uniform(19.0, 22.0, num_rows))
    hour = np.where(bump, evening, base_hour) % 24
    # The weekend-evening emergency crowd skews young.
    young = bump & weekend
    age = np.where(young, np.clip(rng.normal(27.0, 5.0, num_rows), 16, 45), age)

    problem = rng.choice(PROBLEMS, num_rows,
                         p=[0.14, 0.15, 0.15, 0.16, 0.13, 0.09, 0.09, 0.09])
    # Head traumas dominate among the young weekend-evening subpopulation.
    problem = np.where(
        young & (rng.random(num_rows) < 0.55), "head trauma", problem
    )

    return Table("admissions", {
        "AGE": np.rint(age).astype(np.int64),
        "ADMIT_HOUR": np.rint(hour).astype(np.int64) % 24,
        "DAY_OF_WEEK": day.astype(np.int64),
        "DEPARTMENT": department.astype(str),
        "PROBLEM": np.asarray(problem, dtype=str),
    })


def show(title: str, response, top: int = 5) -> None:
    print(f"\n— {title}")
    if response.result is None:
        print("  (time requirement violated — no answer yet)")
        return
    items = sorted(response.result.values.items(),
                   key=lambda kv: -kv[1][0])[:top]
    for key, (value, *_rest) in items:
        print(f"  {key!s:<18} {value:10.0f}")
    print(f"  [answered from {response.result.fraction:.1%} of the data in "
          f"≤ {response.finished_at - response.started_at:.2f}s]")


def main() -> None:
    print("scaling the admissions seed (custom dataset, §3.2) …")
    seed_table = make_patients_seed()
    table = scale_dataset(seed_table, 120_000, seed_value=2020)
    dataset = Dataset.from_table(table)

    settings = BenchmarkSettings(
        dataset="admissions", data_size=DataSize.S,
        scale=100_000_000 // table.num_rows, time_requirement=2.0, seed=2020,
    )
    engine = ProgressiveEngine(dataset, settings, VirtualClock())
    engine.prepare()
    adapter = SystemAdapter(engine)
    adapter.workflow_start()

    ages = VizSpec("ages", "admissions",
                   (BinDimension("AGE", BinKind.QUANTITATIVE, width=10.0),),
                   (Aggregate(AggFunc.COUNT),))
    by_hour = VizSpec("by_hour", "admissions",
                      (BinDimension("ADMIT_HOUR", BinKind.QUANTITATIVE, width=1.0),),
                      (Aggregate(AggFunc.COUNT),))
    problems = VizSpec("problems", "admissions",
                       (BinDimension("PROBLEM", BinKind.NOMINAL),),
                       (Aggregate(AggFunc.COUNT),))

    show("age distribution (roughly normal)", adapter.process_request(ages))
    show("admissions per hour — note the evening bump",
         adapter.process_request(by_hour))

    emergency = SetPredicate("DEPARTMENT", frozenset(["emergency"]))
    show("per hour, emergency only — the bump is theirs",
         adapter.process_request(by_hour, emergency))

    weekend_emergency = And(emergency, RangePredicate("DAY_OF_WEEK", 6, 8))
    show("… on weekends the bump shifts to 10pm–12am",
         adapter.process_request(by_hour, weekend_emergency))

    late_night = And(weekend_emergency, RangePredicate("ADMIT_HOUR", 22, 24))
    show("ages of the weekend 10pm–12am emergency admits (20–35 over-represented)",
         adapter.process_request(ages, late_night))

    show("their most common problems — head trauma leads",
         adapter.process_request(problems, late_night))

    adapter.workflow_end()
    print("\nJean's conclusion: staff a trauma specialist on weekend nights.")


if __name__ == "__main__":
    main()
