#!/usr/bin/env python3
"""Regenerate the golden-report corpus under ``tests/golden/``.

The corpus pins the exact bytes of four end-to-end reports — a serial
run, a shared-engine server run, an adaptive (markov) run and an
open-system churn run — so any change to engines, driver, server,
policies or report rendering that shifts output is caught as a diff, not
discovered downstream. ``tests/test_golden_reports.py`` re-executes the
same builders in-process and asserts byte identity against the checked-in
files.

After an *intentional* behavior change, refresh the corpus with::

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated files together with the change that caused them.
The configuration is deliberately tiny (S size at scale 50 000 → ~2 000
actual rows, TR 1 s) so regeneration and the test both run in seconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

if str(REPO_ROOT / "src") not in sys.path:  # direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))


def build_context():
    """The corpus configuration: identical to the tests' ``server_ctx``."""
    from repro.bench.experiments import ExperimentContext
    from repro.common.config import BenchmarkSettings, DataSize

    return ExperimentContext(
        BenchmarkSettings(
            data_size=DataSize.S,
            scale=50_000,
            seed=5,
            time_requirement=1.0,
        )
    )


def _session_text(results) -> str:
    """Concatenate per-session detailed CSVs under stable banners."""
    parts = []
    for result in results:
        departed = (
            f" departed_at={result.departed_at:.6f}"
            if result.departed_at is not None
            else ""
        )
        parts.append(f"== {result.session_id}{departed} ==\n")
        parts.append(result.csv_text())
    return "".join(parts)


def case_serial_run(ctx) -> str:
    """The ``repro run`` path: two mixed workflows on idea-sim, serially."""
    import io

    from repro.bench.report import DetailedReport
    from repro.workflow.spec import WorkflowType

    records = ctx.run("idea-sim", ctx.workflows(WorkflowType.MIXED, 2))
    buffer = io.StringIO()
    DetailedReport(records).to_csv(buffer)
    return buffer.getvalue()


def case_server_shared(ctx) -> str:
    """Two sessions contending on one idea-sim engine (fair scheduling)."""
    from repro.server import SessionManager

    results = SessionManager.for_engine(
        ctx, "idea-sim", 2, per_session=1, share_engine=True
    ).run()
    return _session_text(results)


def case_adaptive_markov(ctx) -> str:
    """Two adaptive (markov) sessions on isolated idea-sim engines."""
    from repro.server import SessionManager

    results = SessionManager.for_engine(
        ctx, "idea-sim", 2, per_session=1, policy="markov"
    ).run()
    return _session_text(results)


def case_open_churn(ctx) -> str:
    """Open system: Poisson arrivals churning on a shared engine."""
    from repro.server import ArrivalProcess, OpenSystemManager

    arrivals = ArrivalProcess(
        0.2, 40.0, seed=ctx.settings.seed, mean_residence=25.0, max_sessions=4
    )
    results = OpenSystemManager.for_engine(
        ctx, "idea-sim", arrivals, policy="uncertainty",
        per_session=1, share_engine=True,
    ).run()
    return _session_text(results)


def case_tcp_session(ctx) -> str:
    """One scripted TCP session's server→client frames, newline-joined.

    The network front-end's determinism contract (docs/protocol.md):
    message bodies are canonical JSON, so the entire wire conversation
    for a fixed configuration is reproducible byte-for-byte. Length
    prefixes are derivable from the bodies and therefore not pinned.
    """
    from repro.net.client import NetClient
    from repro.net.server import ServerThread, TcpSessionServer

    server = TcpSessionServer(ctx, "idea-sim", max_sessions=1)
    with ServerThread(server) as (host, port):
        with NetClient(host, port, log_frames=True) as client:
            client.hello()
            client.attach_scripted(0, per_session=1, workflow_type="mixed")
            client.collect()
            frames = list(client.frame_log)
    return "\n".join(frames) + "\n"


def case_tcp_shared(ctx) -> str:
    """Slot 0's frames of a 2-session shared-engine TCP run.

    Pins the v2 turn protocol byte-for-byte: HELLO (with the
    shared-engine capability), PROGRESS(attached), BARRIER, then the
    deterministic TURN_GRANT/RECORD interleave of the global virtual
    timeline, closed by the DETACH summary. TURN_DONE acknowledgements
    are client→server and therefore not part of the pinned stream.
    """
    import threading

    from repro.net.client import NetClient, fetch_scripted_session
    from repro.net.server import ServerThread, TcpSessionServer

    server = TcpSessionServer(
        ctx, "idea-sim", share_engine=True, max_sessions=2, per_session=1
    )
    with ServerThread(server) as (host, port):
        peer = threading.Thread(
            target=fetch_scripted_session,
            args=(host, port, 1),
            kwargs={"per_session": 1},
            daemon=True,
        )
        peer.start()
        with NetClient(host, port, log_frames=True) as client:
            client.hello()
            client.attach_scripted(0, per_session=1, workflow_type="mixed")
            client.collect()
            frames = list(client.frame_log)
        peer.join(120)
    return "\n".join(frames) + "\n"


def case_trace_serial(ctx) -> str:
    """Virtual-time trace of the serial run (two-axis contract pin).

    Only the deterministic projection of each entry is pinned
    (``virtual_view``): span/event kinds, names, sequence numbers,
    sessions, attrs and virtual timestamps. Wall-time measurements live
    under the segregated ``"wall"`` key and are stripped, so this file's
    bytes are machine-independent (docs/observability.md).
    """
    from repro.obs import observed
    from repro.obs.sink import entry_line
    from repro.workflow.spec import WorkflowType

    with observed(enabled=True) as tracer:
        ctx.run("idea-sim", ctx.workflows(WorkflowType.MIXED, 2))
        lines = [
            entry_line(entry, virtual_only=True)
            for entry in tracer.entries()
        ]
    return "\n".join(lines) + "\n"


def case_trace_tcp_shared(ctx) -> str:
    """Virtual-time trace of a 2-session shared-engine TCP run.

    The server-side instruments observe the same deterministic timeline
    the wire transcript (``tcp_shared.txt``) pins, so the virtual-only
    trace is reproducible even though every frame crosses a real socket.
    """
    from repro.net.client import fetch_scripted_session
    from repro.net.server import ServerThread, TcpSessionServer
    from repro.obs import observed
    from repro.obs.sink import entry_line

    with observed(enabled=True) as tracer:
        server = TcpSessionServer(
            ctx, "idea-sim", share_engine=True, max_sessions=2, per_session=1
        )
        with ServerThread(server) as (host, port):
            import threading

            peer = threading.Thread(
                target=fetch_scripted_session,
                args=(host, port, 1),
                kwargs={"per_session": 1},
                daemon=True,
            )
            peer.start()
            fetch_scripted_session(host, port, 0, per_session=1)
            peer.join(120)
        lines = [
            entry_line(entry, virtual_only=True)
            for entry in tracer.entries()
        ]
    return "\n".join(lines) + "\n"


def case_timeseries_serial(ctx) -> str:
    """Windowed virtual-time telemetry of a shared-engine server run.

    Pins the incremental time-series fold (docs/observability.md): a
    fresh :class:`TimeSeries` is installed for the run, the session
    manager feeds it lifecycle/turn/record events in global virtual-time
    order, and each flushed window's canonical JSON is pinned. Every
    field is virtual-axis (no wall keys), so the bytes are
    machine-independent and must equal a from-scratch recompute.
    """
    from repro.engines.kernel_cache import clear_kernel_cache
    from repro.obs.timeseries import TimeSeries, set_timeseries
    from repro.server import SessionManager

    def shared_run():
        SessionManager.for_engine(
            ctx, "idea-sim", 2, per_session=1, share_engine=True
        ).run()

    # The kernel hit/miss deltas depend on process state: the context's
    # lazy computations (oracle, scaled tables) touch the cache on first
    # use. One throwaway run warms all of it; measuring then starts from
    # a cleared cache — the same two steps a rebuild in any process must
    # take to reproduce these bytes.
    shared_run()
    clear_kernel_cache()
    series = TimeSeries(window=5.0)
    previous = set_timeseries(series)
    try:
        shared_run()
    finally:
        set_timeseries(previous)
    return series.text()


#: File name → builder. Each builder gets a fresh-or-shared context and
#: returns the complete file content as text.
GOLDEN_CASES = {
    "serial_run.csv": case_serial_run,
    "server_shared.txt": case_server_shared,
    "adaptive_markov.txt": case_adaptive_markov,
    "open_churn.txt": case_open_churn,
    "tcp_session.txt": case_tcp_session,
    "tcp_shared.txt": case_tcp_shared,
    "trace_serial.jsonl": case_trace_serial,
    "trace_tcp_shared.jsonl": case_trace_tcp_shared,
    "timeseries_serial.jsonl": case_timeseries_serial,
}


def main() -> int:
    ctx = build_context()
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, builder in GOLDEN_CASES.items():
        path = GOLDEN_DIR / name
        # Binary I/O end to end: the corpus pins exact bytes, so no
        # platform newline translation may touch it.
        data = builder(ctx).encode("utf-8")
        changed = not path.exists() or path.read_bytes() != data
        path.write_bytes(data)
        status = "updated" if changed else "unchanged"
        print(f"{status}: {path.relative_to(REPO_ROOT)} ({len(data)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
