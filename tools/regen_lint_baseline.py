#!/usr/bin/env python3
"""Regenerate the determinism-lint baseline ``tools/lint_baseline.json``.

The baseline grandfathers known lint findings by content (path, rule,
offending-line text) so the ``repro lint src --strict`` CI gate can stay
*hard* while debt is paid down incrementally — anything not in the file
fails the build. The current tree is clean, so the committed baseline is
empty; keep it that way by fixing (or pragma-justifying, with a reason)
new findings rather than re-baselining them.

After an *intentional* grandfathering decision, refresh with::

    PYTHONPATH=src python tools/regen_lint_baseline.py

and commit the updated file together with the change that caused it —
the same workflow as ``tools/regen_golden.py``. ``--strict`` fails on
stale entries, so the baseline can only ever shrink without this script.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "tools" / "lint_baseline.json"

if str(REPO_ROOT / "src") not in sys.path:  # direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    from repro.analysis import run_lint, save_baseline

    # No baseline applied: the scan must see every unsuppressed finding,
    # including ones the current file grandfathers.
    result = run_lint([str(REPO_ROOT / "src")])
    if result.parse_errors:
        for path, message in result.parse_errors:
            print(f"error: {path}: {message}", file=sys.stderr)
        return 2
    findings = [
        finding for finding in result.findings
        # Hygiene findings (DET000) are never baselinable — a malformed
        # or unused pragma must be fixed, not grandfathered.
        if finding.rule != "DET000"
    ]
    # Findings are recorded relative to the repo root, matching how CI
    # invokes the linter (`repro lint src --strict` from the checkout).
    rel = [
        type(finding)(
            path=str(Path(finding.path).resolve().relative_to(REPO_ROOT).as_posix()),
            line=finding.line, col=finding.col, rule=finding.rule,
            message=finding.message, snippet=finding.snippet,
        )
        for finding in findings
    ]
    before = BASELINE_PATH.read_bytes() if BASELINE_PATH.exists() else None
    data = save_baseline(BASELINE_PATH, rel)
    status = "unchanged" if before == data else "updated"
    print(f"{status}: {BASELINE_PATH.relative_to(REPO_ROOT)} "
          f"({len(rel)} grandfathered finding(s), {len(data)} bytes)")
    if result.findings and not rel:
        print("note: only DET000 hygiene findings present; fix them "
              "directly", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
