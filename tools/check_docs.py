#!/usr/bin/env python3
"""Documentation checks run by the CI docs job (and tier-1 tests).

Two guarantees, kept machine-checked so the docs cannot silently rot:

1. **links resolve** — every relative markdown link in the repository's
   ``*.md`` files (README, docs/, top-level notes) points at a file or
   directory that exists. External (``http(s)://``, ``mailto:``) and
   pure-anchor (``#...``) links are skipped; ``path#anchor`` links are
   checked for the path part.
2. **architecture coverage** — every package under ``src/repro/`` (and
   the top-level ``cli.py``) is mentioned in ``docs/architecture.md``,
   so the package map can never miss a subsystem.
3. **required sections** — load-bearing documentation sections must keep
   existing: docs/server.md must document the adaptive-policy and
   open-system churn modes (and their determinism guarantees),
   docs/paper-mapping.md must map the policy module, and the README must
   list the ``bench-adaptive`` and ``cache`` CLI commands. The required
   markers live in :data:`REQUIRED_SECTIONS`.

Run from the repository root (CI does)::

    python tools/check_docs.py

Exits non-zero with a per-problem report on failure. The same checks run
in tier 1 via ``tests/test_docs.py``, so a broken link fails locally
before it fails in CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Inline markdown links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Directories never scanned for markdown.
_SKIP_DIRS = {".git", ".repro-cache", "__pycache__", ".pytest_cache", "node_modules"}

#: Generated/retrieved reference material (paper extraction artifacts) —
#: not authored here, so dangling figure refs inside them are expected.
_SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def markdown_files(root: Path) -> List[Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if path.name in _SKIP_FILES:
            continue
        if not _SKIP_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def extract_links(text: str) -> List[str]:
    return _LINK_RE.findall(text)


def check_links(root: Path) -> List[str]:
    """Return one problem string per unresolvable relative link."""
    problems = []
    for md_file in markdown_files(root):
        text = md_file.read_text(encoding="utf-8")
        for target in extract_links(text):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, etc.
            if target.startswith("#"):
                continue  # intra-document anchor
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md_file.relative_to(root)}: broken link -> {target}"
                )
    return problems


def check_architecture_coverage(root: Path) -> List[str]:
    """Every src/repro/ package (and cli.py) must appear in architecture.md."""
    architecture = root / "docs" / "architecture.md"
    if not architecture.exists():
        return ["docs/architecture.md is missing"]
    text = architecture.read_text(encoding="utf-8")
    problems = []
    package_root = root / "src" / "repro"
    required: List[Tuple[str, str]] = [
        (f"src/repro/{path.name}/", path.name)
        for path in sorted(package_root.iterdir())
        if path.is_dir() and (path / "__init__.py").exists()
    ]
    required.append(("src/repro/cli.py", "cli"))
    for mention, name in required:
        if mention not in text:
            problems.append(
                f"docs/architecture.md: package {name!r} not mentioned "
                f"(expected the literal path {mention!r})"
            )
    return problems


#: file → literal strings that must appear in it. Keep the markers short
#: and load-bearing: each one names a documented capability whose silent
#: disappearance should fail CI.
REQUIRED_SECTIONS = {
    "docs/server.md": [
        "## Adaptive sessions (interaction policies)",
        "## Open-system churn (arrivals and departures)",
        "### Shared-engine serving over TCP (v2 turn protocol)",
        "### Remote load generation (`bench-net --remote`)",
        "## Population scale (constant memory)",
        "byte-identical across repeated invocations",
        "cancel_group",
        "tools/regen_golden.py",
        "REPRO_SCHEDULER",
        "src/repro/server/spool.py",
        "iter_spool",
        "O(active sessions)",
        "benchmarks/bench_scale.py",
    ],
    "docs/paper-mapping.md": [
        "src/repro/workflow/policy.py",
        "ArrivalProcess",
        "src/repro/net/",
        "RateSchedule",
    ],
    "docs/protocol.md": [
        "## Wire format",
        "## Message catalog",
        "## Determinism contract",
        "## Protocol v2: shared-engine turns",
        "length (4 B)",
        "byte-identical",
        "turn_grant",
        "turn_done",
        "barrier",
        "supported_versions",
        "tests/golden/tcp_session.txt",
        "tests/golden/tcp_shared.txt",
        "stats_request",
        "### Stats probes",
        "### Streaming telemetry",
        "stats_subscribe",
        "stats_push",
        "stats_unsubscribe",
        "--stats-window",
    ],
    "docs/kernels.md": [
        "## The compile pipeline",
        "## Cache keying",
        "## The incremental contract",
        "## The determinism guarantee",
        "## Escape hatches",
        "dataset.fingerprint()",
        "query_cache_key",
        "repro_kernel_cache_",
        "REPRO_KERNELS",
        "REPRO_KERNEL_CACHE_SIZE",
        "--no-kernels",
        "BENCH_kernels.json",
        "bitwise equality",
    ],
    "docs/observability.md": [
        "## The two-axis contract",
        "## Span and event taxonomy",
        "## The STATS wire message",
        "## Stage profiling",
        "virtual_view",
        "tests/golden/trace_serial.jsonl",
        "tests/golden/trace_tcp_shared.jsonl",
        "repro trace summary",
        "BENCH_obs.json",
        "--metrics-out",
        "## Windowed virtual-time series",
        "## Streaming STATS subscriptions",
        "## SLO watchdog",
        "## Cross-host trace correlation",
        "tests/golden/timeseries_serial.jsonl",
        "repro trace merge",
        "repro top",
        "BENCH_obs_stream.json",
    ],
    "docs/determinism.md": [
        "## The invariants",
        "## The lint pass",
        "### Rule catalog",
        "### Tier policy",
        "### Suppressions: the `repro: allow` pragma",
        "### The baseline",
        "### Exit codes",
        "repro lint src --strict",
        "tools/lint_baseline.json",
        "tools/regen_lint_baseline.py",
        "tests/lint_fixtures/regress_pr1_setpredicate.py",
        "DET001",
        "DET006",
        "PYTHONHASHSEED",
    ],
    "README.md": [
        "bench-adaptive",
        "repro cache",
        "--policy",
        "--arrivals",
        "--arrival-schedule",
        "bench-net",
        "--remote",
        "--share-engine",
        "connect",
        "repro report snapshot",
        "repro report diff",
        "--trace",
        "--metrics-out",
        "--log-level",
        "repro trace summary",
        "repro trace merge",
        "repro top",
        "--stats-window",
        "docs/observability.md",
        "--no-kernels",
        "REPRO_KERNELS=off",
        "docs/kernels.md",
        "repro lint",
        "docs/determinism.md",
    ],
}


def check_required_sections(root: Path) -> List[str]:
    """Return one problem string per missing required doc marker.

    Matching is whitespace-insensitive (runs of whitespace collapse to a
    single space on both sides), so re-wrapping a paragraph never breaks
    the check — only removing the documented capability does.
    """
    problems = []
    for rel_path, markers in REQUIRED_SECTIONS.items():
        path = root / rel_path
        if not path.exists():
            problems.append(f"{rel_path} is missing")
            continue
        text = " ".join(path.read_text(encoding="utf-8").split())
        for marker in markers:
            if " ".join(marker.split()) not in text:
                problems.append(
                    f"{rel_path}: required section/marker missing: {marker!r}"
                )
    return problems


def main() -> int:
    root = repo_root()
    problems = (
        check_links(root)
        + check_architecture_coverage(root)
        + check_required_sections(root)
    )
    files = markdown_files(root)
    if problems:
        print(f"docs check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"docs check OK: {len(files)} markdown files, all relative links "
        f"resolve, architecture.md covers every src/repro package, all "
        f"required sections present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
